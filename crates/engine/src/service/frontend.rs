//! The non-blocking serving front-end: admission control over a
//! [`VoiceService`].
//!
//! [`VoiceService::respond`] is lock-light and `&self`, so any number of
//! threads *can* call it directly — but a thread per voice session does
//! not survive bursty production traffic: a load spike either spawns
//! unbounded threads or blocks callers for unbounded time. The
//! [`FrontEnd`] multiplexes many concurrent sessions over a small fixed
//! worker set instead:
//!
//! * **Bounded ingress.** [`FrontEnd::submit`] enqueues the request and
//!   immediately returns a [`ResponseTicket`] — a future-style handle
//!   completed by a serving worker. The queue is bounded; past the
//!   configured capacity the request is *shed* with an explicit
//!   [`Answer::Overloaded`] (or, under [`OverloadPolicy::Block`], the
//!   submitter waits for space). Nothing inside grows with offered load.
//! * **Per-tenant fairness.** Queued requests live in per-tenant FIFO
//!   lanes served round-robin, and each tenant's queue share is capped
//!   ([`FrontEndBuilder::tenant_share`]), so one hot tenant saturating
//!   the service cannot starve the others: its overflow is shed while
//!   other tenants keep being admitted.
//! * **Deadlines & expiry.** A request may carry an absolute deadline
//!   (its own [`ServiceRequest::with_deadline`], else the tenant's
//!   [`TenantSpec::default_deadline`], else the front-end-wide
//!   [`FrontEndBuilder::default_deadline`]). When admission finds the
//!   queue full, the *oldest queued request already past its deadline*
//!   is shed first — completed with [`Answer::Expired`] — before fresh
//!   work is shed or blocked, and a serving worker re-checks expiry
//!   when it picks a request up, so no compute is spent on an answer
//!   nobody is waiting for. The remaining budget rides into the respond
//!   path's degradation ladder (see
//!   [`crate::pipeline`]), which steps down to a greedy or store-only
//!   answer rather than missing the deadline.
//! * **A priority lane.** Background work — tenant registration and
//!   delta refreshes submitted through [`FrontEnd::submit_register`] /
//!   [`FrontEnd::submit_refresh`] — rides a separate control lane served
//!   only when no interactive request is queued (with aging: sustained
//!   interactive load delays background work by a bounded number of
//!   batches rather than starving it). Combined with the bulk tag such
//!   batches carry into the shared
//!   [`SolverPool`](crate::service::SolverPool), a large registration
//!   cannot delay live `respond` traffic beyond the request currently
//!   being served.
//! * **Graceful shutdown.** Dropping the front-end (or calling
//!   [`FrontEnd::shutdown`]) drains every admitted request — tickets are
//!   never lost — and joins the workers.
//!
//! ```
//! use std::sync::Arc;
//! use vqs_engine::prelude::*;
//! use vqs_data::{DimSpec, SynthSpec, TargetSpec};
//!
//! let data = SynthSpec {
//!     name: "demo".into(),
//!     dims: vec![DimSpec::named("season", &["Winter", "Summer"])],
//!     targets: vec![TargetSpec::new("delay", 15.0, 6.0, 2.0, (0.0, 60.0))],
//!     rows: 200,
//! }.generate(1, 1.0);
//! let config = Configuration::new("demo", &["season"], &["delay"]);
//!
//! let service = Arc::new(ServiceBuilder::new().workers(2).build());
//! service
//!     .register_dataset(TenantSpec::new("demo", data, config))
//!     .unwrap();
//!
//! let frontend = FrontEnd::builder(Arc::clone(&service))
//!     .workers(2)
//!     .queue_capacity(128)
//!     .build();
//! let ticket = frontend.submit(ServiceRequest::new("demo", "delay in Winter?"));
//! let response = ticket.wait();
//! assert!(response.answer.is_speech());
//! assert_eq!(frontend.stats().completed, 1);
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vqs_data::GeneratedDataset;
use vqs_relalg::hash::FxHashMap;

use crate::error::{EngineError, Result};
use crate::generator::{PreprocessReport, RefreshReport};
use crate::ingest::{IngestReport, RowDelta};
use crate::pipeline::Exec;
use crate::service::{
    Answer, Degradation, ServiceRequest, ServiceResponse, Tenant, TenantSpec, VoiceService,
    EXPIRED, INTERNAL_ERROR, OVERLOADED,
};
use crate::template::speaking_time_secs;

/// How many queued interactive requests one worker claims per queue-lock
/// acquisition (round-robin across tenant lanes), amortizing the handoff
/// cost under load.
const SERVE_BATCH: usize = 32;

/// After this many consecutive interactive batches, a queued background
/// job is served even though interactive work is still queued:
/// interactive traffic keeps priority, but sustained load can only
/// *delay* a registration or refresh, never starve it forever.
const BACKGROUND_AGING: usize = 8;

/// Emptied per-tenant lanes are kept (their buffers are reused) only up
/// to this many lanes; beyond it, emptied lanes are dropped so ingress
/// state stays bounded even when clients invent tenant names.
const RETAINED_LANES: usize = 64;

/// Distinct tenants tracked by the per-tenant shed counters; rejections
/// for names beyond this bucket into a `"(other)"` row so the map
/// cannot grow without bound under an adversarial name flood.
const SHED_TENANT_CAP: usize = 256;

/// Upper bound on the exponential backoff between background retry
/// attempts ([`FrontEndBuilder::retry_backoff`] doubles per attempt up
/// to this cap).
const RETRY_BACKOFF_CAP: Duration = Duration::from_millis(50);

/// Longest the background flusher sleeps between passes. The adaptive
/// tick sleeps half the shortest tenant `flush_interval`, but never more
/// than this — so a tenant registered with a *smaller* interval while
/// the flusher is mid-sleep is picked up within one bounded pass.
const FLUSH_TICK_CAP: Duration = Duration::from_millis(100);

/// Shortest flusher sleep (spinning faster than this buys nothing —
/// `auto_flush_due` gates on the per-tenant interval anyway).
const FLUSH_TICK_FLOOR: Duration = Duration::from_millis(1);

/// What [`FrontEnd::submit`] does when admission would exceed a global
/// cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Reject immediately: the ticket completes with
    /// [`Answer::Overloaded`] (interactive) or
    /// [`EngineError::Overloaded`] (background). The default — shedding
    /// keeps the submitter non-blocked, which is what a voice gateway
    /// wants: "try again" beats silence.
    #[default]
    Shed,
    /// Block the submitting thread until the queue has space. Overflow
    /// of a *tenant's* fair share still sheds (see
    /// [`FrontEndBuilder::tenant_share`]): blocking a flooding tenant
    /// would merely move the starvation to its submitter threads.
    Block,
}

/// Shared completion state of one ticket. The value lives in a
/// [`OnceLock`], so readiness checks and completed-value reads are
/// lock-free; the mutex guards only the count of parked waiters, and a
/// completion pays the condvar notification only when somebody is
/// actually parked.
struct TicketInner<T> {
    value: OnceLock<T>,
    waiters: Mutex<u32>,
    ready: Condvar,
}

/// A future-style handle to one admitted request. Cloneable — any number
/// of threads may wait on or poll the same ticket; every waiter observes
/// the same completed value.
pub struct Ticket<T: Clone> {
    inner: Arc<TicketInner<T>>,
}

impl<T: Clone> Clone for Ticket<T> {
    fn clone(&self) -> Self {
        Ticket {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Clone> std::fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("ready", &self.is_ready())
            .finish()
    }
}

impl<T: Clone> Ticket<T> {
    fn pending() -> Ticket<T> {
        Ticket {
            inner: Arc::new(TicketInner {
                value: OnceLock::new(),
                waiters: Mutex::new(0),
                ready: Condvar::new(),
            }),
        }
    }

    fn completed(value: T) -> Ticket<T> {
        let ticket = Ticket::pending();
        let _ = ticket.inner.value.set(value);
        ticket
    }

    fn complete(&self, value: T) {
        let won = self.inner.value.set(value).is_ok();
        debug_assert!(won, "ticket completed twice");
        // Registration of a waiter happens under the mutex after a
        // failed lock-free read, so taking the mutex here orders this
        // wakeup after any in-flight registration — and skips the
        // condvar entirely in the common nobody-parked case.
        let waiters = self.inner.waiters.lock().expect("ticket poisoned");
        if *waiters > 0 {
            self.inner.ready.notify_all();
        }
    }

    /// Park until the value is set (lock-free fast path first).
    fn block_until_ready(&self) {
        if self.inner.value.get().is_some() {
            return;
        }
        let mut waiters = self.inner.waiters.lock().expect("ticket poisoned");
        while self.inner.value.get().is_none() {
            *waiters += 1;
            waiters = self.inner.ready.wait(waiters).expect("ticket poisoned");
            *waiters -= 1;
        }
    }

    /// Whether the result is available ([`Ticket::wait`] would not
    /// block). Lock-free.
    pub fn is_ready(&self) -> bool {
        self.inner.value.get().is_some()
    }

    /// Block until the request completed and return its result.
    pub fn wait(&self) -> T {
        self.block_until_ready();
        self.inner.value.get().cloned().expect("ticket ready above")
    }

    /// [`Ticket::wait`], consuming the handle. When this is the last
    /// handle to the ticket (the common single-consumer case — the
    /// serving worker drops its own handle at completion), the result
    /// is moved out instead of cloned, which keeps the per-request
    /// overhead allocation-free on the hot path.
    pub fn into_inner(self) -> T {
        self.block_until_ready();
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => inner.value.into_inner().expect("ticket ready above"),
            Err(inner) => inner.value.get().cloned().expect("ticket ready above"),
        }
    }

    /// [`Ticket::wait`] with a deadline; `None` on timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<T> {
        if let Some(value) = self.inner.value.get() {
            return Some(value.clone());
        }
        let deadline = Instant::now() + timeout;
        let mut waiters = self.inner.waiters.lock().expect("ticket poisoned");
        loop {
            if let Some(value) = self.inner.value.get() {
                return Some(value.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            *waiters += 1;
            let (guard, _) = self
                .inner
                .ready
                .wait_timeout(waiters, deadline - now)
                .expect("ticket poisoned");
            waiters = guard;
            *waiters -= 1;
        }
    }
}

/// Ticket for one interactive request; completes with the same
/// [`ServiceResponse`] a direct [`VoiceService::respond`] call returns
/// (or an [`Answer::Overloaded`] response when shed).
pub type ResponseTicket = Ticket<ServiceResponse>;
/// Ticket for one [`FrontEnd::submit_chunk`]; completes with one
/// response per request, in submission order.
pub type ChunkTicket = Ticket<Vec<ServiceResponse>>;
/// Ticket for a background [`FrontEnd::submit_register`].
pub type RegisterTicket = Ticket<Result<PreprocessReport>>;
/// Ticket for a background [`FrontEnd::submit_refresh`].
pub type RefreshTicket = Ticket<Result<RefreshReport>>;
/// Ticket for a background [`FrontEnd::submit_ingest`].
pub type IngestTicket = Ticket<Result<IngestReport>>;
/// Ticket for a background [`FrontEnd::submit_task`].
pub type TaskTicket = Ticket<()>;

/// Render a contained panic payload for [`EngineError::Internal`].
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// The response a request completes with when the serving worker
/// contained a panic while answering it: a typed [`Answer::Internal`]
/// (a bug signal, distinct from overload), unattributed — the request
/// was consumed by the panicking call. Completing beats hanging the
/// waiter forever.
fn contained_panic_response(
    payload: Box<dyn std::any::Any + Send>,
    start: Instant,
) -> ServiceResponse {
    ServiceResponse {
        tenant: String::new(),
        request: None,
        speaking_secs: speaking_time_secs(INTERNAL_ERROR),
        follow_on: None,
        session: None,
        latency_micros: start.elapsed().as_micros() as u64,
        answer: Answer::Internal {
            what: panic_text(payload),
        },
        degradation: Degradation::None,
    }
}

/// Run a fallible background operation with bounded retries.
///
/// Only *infrastructure* failures are retried: contained panics (each
/// attempt runs under its own `catch_unwind`) and
/// [`EngineError::Internal`]. Typed domain errors — duplicate tenant,
/// unknown tenant, bad data — are deterministic, so retrying them would
/// only burn control-lane time; they surface immediately. The backoff
/// doubles per attempt from `backoff`, capped at [`RETRY_BACKOFF_CAP`].
fn run_with_retry<T>(
    retries: u32,
    backoff: Duration,
    retried: &AtomicU64,
    attempt: impl Fn() -> Result<T>,
) -> Result<T> {
    let mut tries = 0u32;
    loop {
        let outcome = catch_unwind(AssertUnwindSafe(&attempt)).unwrap_or_else(|payload| {
            Err(EngineError::Internal {
                what: panic_text(payload),
            })
        });
        match outcome {
            Err(EngineError::Internal { .. }) if tries < retries => {
                tries += 1;
                retried.fetch_add(1, Ordering::Relaxed);
                let exp = backoff.saturating_mul(1u32 << (tries - 1).min(16));
                std::thread::sleep(exp.min(RETRY_BACKOFF_CAP));
            }
            outcome => return outcome,
        }
    }
}

/// The response a queue-expired request completes with. `queued_for` is
/// also the reported latency — the request's entire cost was its time in
/// the queue; it was never computed.
fn expired_response(tenant: &str, queued_for: Duration) -> ServiceResponse {
    ServiceResponse {
        tenant: tenant.to_string(),
        request: None,
        speaking_secs: speaking_time_secs(EXPIRED),
        follow_on: None,
        session: None,
        latency_micros: queued_for.as_micros() as u64,
        answer: Answer::Expired {
            tenant: tenant.to_string(),
            queued_for,
        },
        degradation: Degradation::None,
    }
}

/// A queued interactive request.
struct QueuedRespond {
    request: ServiceRequest,
    ticket: ResponseTicket,
    submitted_at: Instant,
}

/// One entry in an interactive lane: a single request with its own
/// ticket, or a whole [`FrontEnd::submit_chunk`] chunk completing one
/// ticket (the high-throughput shape — per-request queue and ticket
/// costs are amortized across the chunk).
enum Queued {
    One(QueuedRespond),
    Chunk {
        requests: Vec<ServiceRequest>,
        ticket: ChunkTicket,
        submitted_at: Instant,
    },
}

impl Queued {
    /// Requests carried by this entry.
    fn len(&self) -> usize {
        match self {
            Queued::One(_) => 1,
            Queued::Chunk { requests, .. } => requests.len(),
        }
    }

    /// When this entry was admitted.
    fn submitted_at(&self) -> Instant {
        match self {
            Queued::One(queued) => queued.submitted_at,
            Queued::Chunk { submitted_at, .. } => *submitted_at,
        }
    }

    /// Whether *every* request this entry carries is past its deadline
    /// (requests are stamped with their resolved deadline at admission;
    /// a deadline-free request never expires). A chunk is only shed
    /// whole once all its members are stale.
    fn expired(&self, now: Instant) -> bool {
        match self {
            Queued::One(queued) => queued.request.deadline.is_some_and(|d| now >= d),
            Queued::Chunk { requests, .. } => requests
                .iter()
                .all(|request| request.deadline.is_some_and(|d| now >= d)),
        }
    }
}

/// A tenant's FIFO lane plus its queued-request total (entries may be
/// multi-request chunks, so the total is not the entry count).
#[derive(Default)]
struct Lane {
    entries: VecDeque<Queued>,
    queued: usize,
}

/// A queued background job (registration, refresh, or ad-hoc task);
/// completes its own ticket.
type BackgroundJob = Box<dyn FnOnce(&VoiceService) + Send + 'static>;

/// The ingress state, under one lock.
struct Ingress {
    /// Per-tenant FIFO lanes of the interactive queue.
    lanes: FxHashMap<String, Lane>,
    /// Tenants with a non-empty lane, in round-robin dispatch order.
    rotation: VecDeque<String>,
    /// Total requests across all interactive lanes.
    interactive_queued: usize,
    /// Interactive requests admitted but not yet completed
    /// (queued + executing).
    in_flight: usize,
    /// The background/control lane.
    background: VecDeque<BackgroundJob>,
    /// Consecutive interactive batches served since the last background
    /// job (drives [`BACKGROUND_AGING`]).
    interactive_streak: usize,
    /// Workers currently parked on `work_ready`.
    idle_workers: usize,
    /// Interactive submitters parked for queue space (Block policy).
    blocked_interactive: usize,
    /// Background submitters parked for control-lane space (Block
    /// policy).
    blocked_background: usize,
    /// Set once by shutdown; workers drain both lanes, then exit.
    shutdown: bool,
}

/// Monotonic counters, read through [`FrontEnd::stats`].
#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    degraded: AtomicU64,
    blocked: AtomicU64,
    background_submitted: AtomicU64,
    background_completed: AtomicU64,
    retried_background: AtomicU64,
    ingest_submitted: AtomicU64,
    ingest_deltas: AtomicU64,
    peak_queued: AtomicU64,
    contained_panics: AtomicU64,
    flush_ticks: AtomicU64,
    background_flushes: AtomicU64,
    shed_by_tenant: Mutex<FxHashMap<String, u64>>,
}

/// Shutdown handshake for the background flusher thread: the stop flag
/// under the mutex, the condvar to cut a tick sleep short at shutdown.
struct FlusherSignal {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// State shared between the front-end handle and its serving workers.
struct FrontShared {
    ingress: Mutex<Ingress>,
    work_ready: Condvar,
    /// Wakes interactive submitters parked for queue space.
    space_interactive: Condvar,
    /// Wakes background submitters parked for control-lane space.
    space_background: Condvar,
    counters: Counters,
}

/// A point-in-time snapshot of the front-end counters.
#[derive(Debug, Clone, Default)]
pub struct FrontEndStats {
    /// Interactive requests offered to [`FrontEnd::submit`].
    pub submitted: u64,
    /// Interactive requests completed by a serving worker.
    pub completed: u64,
    /// Interactive requests rejected with [`Answer::Overloaded`].
    pub shed: u64,
    /// Interactive requests that sat in the queue past their deadline
    /// and were completed with [`Answer::Expired`] without being
    /// computed. Every submitted request lands in exactly one of
    /// `completed`, `shed`, or `expired`; once the queue drains,
    /// `submitted == completed + shed + expired`.
    pub expired: u64,
    /// Completed requests whose answer stepped down the degradation
    /// ladder to meet its deadline
    /// ([`ServiceResponse::degradation`] ≠ [`Degradation::None`]).
    /// A subset of `completed`: a degraded answer is still an answer.
    pub degraded: u64,
    /// Times a submitter blocked for queue space
    /// ([`OverloadPolicy::Block`]).
    pub blocked: u64,
    /// Background jobs admitted (registrations, refreshes, tasks).
    pub background_submitted: u64,
    /// Background jobs claimed and run by a worker (counted as the job
    /// starts; every claimed job runs to completion).
    pub background_completed: u64,
    /// Background attempts retried after an infrastructure failure (a
    /// contained panic or [`EngineError::Internal`]); typed domain
    /// errors are never retried. Each retry of the same job counts
    /// once, so one job can contribute up to
    /// [`FrontEndBuilder::background_retries`].
    pub retried_background: u64,
    /// Streaming-ingestion batches admitted via
    /// [`FrontEnd::submit_ingest`] (a subset of `background_submitted`).
    pub ingest_submitted: u64,
    /// Row deltas carried by those admitted batches.
    pub ingest_deltas: u64,
    /// Highest interactive queue depth observed at admission.
    pub peak_queued: u64,
    /// Interactive requests whose handling panicked; the panic was
    /// contained and the ticket completed with [`Answer::Internal`].
    /// Nonzero values indicate bugs, not load.
    pub contained_panics: u64,
    /// Passes the background flusher made over the streaming tenants
    /// (zero when the tick is disabled or no front-end flusher runs).
    pub flush_ticks: u64,
    /// Tenants whose pending delta log the background flusher drained —
    /// flushes that happened *without* an ingest call to piggyback on
    /// (a silent tenant converging on its `flush_interval`).
    pub background_flushes: u64,
    /// Interactive sheds per tenant, sorted by tenant name.
    pub shed_by_tenant: Vec<(String, u64)>,
}

/// Configures and spawns a [`FrontEnd`].
#[derive(Debug)]
pub struct FrontEndBuilder {
    service: Arc<VoiceService>,
    workers: usize,
    queue_capacity: usize,
    tenant_share: Option<usize>,
    in_flight_cap: Option<usize>,
    background_capacity: usize,
    policy: OverloadPolicy,
    default_deadline: Option<Duration>,
    background_retries: u32,
    retry_backoff: Duration,
    flush_tick: Option<Duration>,
    flush_tick_enabled: bool,
}

impl FrontEndBuilder {
    /// Start from the defaults: 2 serving workers, a 1024-deep ingress
    /// queue with no per-tenant cap below it, a 64-deep background lane,
    /// the shed policy, no service-wide deadline, up to 2 background
    /// retries, and the adaptive background flush tick enabled.
    pub fn new(service: Arc<VoiceService>) -> FrontEndBuilder {
        FrontEndBuilder {
            service,
            workers: 2,
            queue_capacity: 1024,
            tenant_share: None,
            in_flight_cap: None,
            background_capacity: 64,
            policy: OverloadPolicy::Shed,
            default_deadline: None,
            background_retries: 2,
            retry_backoff: Duration::from_millis(1),
            flush_tick: None,
            flush_tick_enabled: true,
        }
    }

    /// Serving worker threads (`0` = all available cores; clamped to at
    /// least 1). Lookups are µs-scale, so a handful of workers saturate
    /// a store — size this to cores, not to concurrent sessions.
    pub fn workers(mut self, workers: usize) -> FrontEndBuilder {
        self.workers = workers;
        self
    }

    /// Maximum *queued* interactive requests across all tenants
    /// (clamped to at least 1). The admission cap: request `capacity+1`
    /// sheds (or blocks).
    pub fn queue_capacity(mut self, capacity: usize) -> FrontEndBuilder {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Maximum queued requests any single tenant may hold (defaults to
    /// the whole queue capacity). A tenant past its share is always
    /// shed — even under [`OverloadPolicy::Block`] — so a hot tenant's
    /// burst cannot consume the queue space other tenants admit into.
    pub fn tenant_share(mut self, share: usize) -> FrontEndBuilder {
        self.tenant_share = Some(share.max(1));
        self
    }

    /// Maximum admitted-but-incomplete interactive requests (defaults
    /// to unbounded: queued work is already bounded by
    /// [`FrontEndBuilder::queue_capacity`], and executing work by the
    /// workers' claim sizes, so the default adds no constraint).
    pub fn in_flight_cap(mut self, cap: usize) -> FrontEndBuilder {
        self.in_flight_cap = Some(cap.max(1));
        self
    }

    /// Maximum queued background jobs (registrations/refreshes/tasks;
    /// clamped to at least 1).
    pub fn background_capacity(mut self, capacity: usize) -> FrontEndBuilder {
        self.background_capacity = capacity.max(1);
        self
    }

    /// What to do when a global cap is hit (default:
    /// [`OverloadPolicy::Shed`]).
    pub fn policy(mut self, policy: OverloadPolicy) -> FrontEndBuilder {
        self.policy = policy;
        self
    }

    /// Service-wide default deadline budget: a request with neither its
    /// own [`ServiceRequest::deadline`] nor a tenant default
    /// ([`TenantSpec::default_deadline`]) is stamped `now + budget` at
    /// admission. The default (`None`) leaves such requests
    /// deadline-free — they never expire and never degrade.
    pub fn default_deadline(mut self, budget: Duration) -> FrontEndBuilder {
        self.default_deadline = Some(budget);
        self
    }

    /// Maximum retries for one background job (registration or refresh)
    /// after an infrastructure failure — a contained panic or
    /// [`EngineError::Internal`]. Typed domain errors (duplicate
    /// tenant, unknown tenant, bad data) are deterministic and surface
    /// immediately, never retried. Default: 2.
    pub fn background_retries(mut self, retries: u32) -> FrontEndBuilder {
        self.background_retries = retries;
        self
    }

    /// Backoff before the first background retry; doubles per attempt,
    /// capped at 50 ms. Default: 1 ms.
    pub fn retry_backoff(mut self, backoff: Duration) -> FrontEndBuilder {
        self.retry_backoff = backoff;
        self
    }

    /// Fixed period for the background flush tick, overriding the
    /// adaptive default (half the shortest streaming tenant's
    /// [`flush_interval`], re-read every pass, capped at 100 ms). The
    /// tick is what makes a tenant that goes *silent* after a burst
    /// converge: without it, debounced flushes only run piggybacked on
    /// the next ingest call. With the default (or any period ≤ the
    /// interval), a lone delta is re-summarized within 2× its tenant's
    /// `flush_interval` with no further calls.
    ///
    /// [`flush_interval`]: crate::ingest::IngestBuilder::flush_interval
    pub fn flush_tick(mut self, period: Duration) -> FrontEndBuilder {
        self.flush_tick = Some(period.max(FLUSH_TICK_FLOOR));
        self.flush_tick_enabled = true;
        self
    }

    /// Do not spawn the background flusher thread. Streaming tenants
    /// then flush only inline with ingest calls (the pre-tick behavior)
    /// or explicitly via [`VoiceService::drain_ingest`] /
    /// [`VoiceService::ingest_tick`].
    pub fn no_flush_tick(mut self) -> FrontEndBuilder {
        self.flush_tick_enabled = false;
        self
    }

    /// Spawn the serving workers and build the front-end.
    pub fn build(self) -> FrontEnd {
        let workers = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
        } else {
            self.workers
        };
        let shared = Arc::new(FrontShared {
            ingress: Mutex::new(Ingress {
                lanes: FxHashMap::default(),
                rotation: VecDeque::new(),
                interactive_queued: 0,
                in_flight: 0,
                background: VecDeque::new(),
                interactive_streak: 0,
                idle_workers: 0,
                blocked_interactive: 0,
                blocked_background: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            space_interactive: Condvar::new(),
            space_background: Condvar::new(),
            counters: Counters::default(),
        });
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                let service = Arc::clone(&self.service);
                std::thread::Builder::new()
                    .name(format!("vqs-serve-{index}"))
                    .spawn(move || worker_loop(&shared, &service))
                    .expect("spawn serving worker")
            })
            .collect();
        let flusher_signal = Arc::new(FlusherSignal {
            stop: Mutex::new(false),
            wake: Condvar::new(),
        });
        let flusher = self.flush_tick_enabled.then(|| {
            let shared = Arc::clone(&shared);
            let service = Arc::clone(&self.service);
            let signal = Arc::clone(&flusher_signal);
            let period = self.flush_tick;
            std::thread::Builder::new()
                .name("vqs-flush".to_string())
                .spawn(move || flusher_loop(&shared, &service, &signal, period))
                .expect("spawn flusher")
        });
        FrontEnd {
            service: self.service,
            shared,
            workers,
            queue_capacity: self.queue_capacity,
            tenant_share: self.tenant_share.unwrap_or(self.queue_capacity),
            in_flight_cap: self.in_flight_cap.unwrap_or(usize::MAX),
            background_capacity: self.background_capacity,
            policy: self.policy,
            default_deadline: self.default_deadline,
            background_retries: self.background_retries,
            retry_backoff: self.retry_backoff,
            handles,
            flusher,
            flusher_signal,
        }
    }
}

/// The serving front-end; see the [module docs](crate::service::frontend)
/// for the admission model. All submission methods take `&self` — share the front-end
/// behind an [`Arc`] across any number of gateway threads.
pub struct FrontEnd {
    service: Arc<VoiceService>,
    shared: Arc<FrontShared>,
    workers: usize,
    queue_capacity: usize,
    tenant_share: usize,
    in_flight_cap: usize,
    background_capacity: usize,
    policy: OverloadPolicy,
    default_deadline: Option<Duration>,
    background_retries: u32,
    retry_backoff: Duration,
    handles: Vec<JoinHandle<()>>,
    flusher: Option<JoinHandle<()>>,
    flusher_signal: Arc<FlusherSignal>,
}

impl std::fmt::Debug for FrontEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontEnd")
            .field("workers", &self.workers)
            .field("queue_capacity", &self.queue_capacity)
            .field("tenant_share", &self.tenant_share)
            .field("in_flight_cap", &self.in_flight_cap)
            .field("policy", &self.policy)
            .field("default_deadline", &self.default_deadline)
            .finish_non_exhaustive()
    }
}

impl FrontEnd {
    /// Start configuring a front-end over `service`.
    pub fn builder(service: Arc<VoiceService>) -> FrontEndBuilder {
        FrontEndBuilder::new(service)
    }

    /// The service this front-end serves.
    pub fn service(&self) -> &Arc<VoiceService> {
        &self.service
    }

    /// Serving worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Queued (interactive, background) requests right now — a racy
    /// load gauge.
    pub fn queue_depths(&self) -> (usize, usize) {
        let ingress = self.shared.ingress.lock().expect("ingress poisoned");
        (ingress.interactive_queued, ingress.background.len())
    }

    /// The response a shed request completes with, and the per-tenant
    /// accounting of the rejection.
    fn shed_response(&self, tenant: &str, start: Instant) -> ServiceResponse {
        self.shared.counters.shed.fetch_add(1, Ordering::Relaxed);
        {
            // Leaf lock (never held while taking another). Allocate the
            // map key only on a tenant's first shed — this path runs
            // hottest exactly during overload bursts.
            let mut shed_by_tenant = self
                .shared
                .counters
                .shed_by_tenant
                .lock()
                .expect("shed map poisoned");
            if let Some(count) = shed_by_tenant.get_mut(tenant) {
                *count += 1;
            } else if shed_by_tenant.len() < SHED_TENANT_CAP {
                shed_by_tenant.insert(tenant.to_string(), 1);
            } else {
                *shed_by_tenant.entry("(other)".to_string()).or_insert(0) += 1;
            }
        }
        let answer = Answer::Overloaded {
            tenant: tenant.to_string(),
        };
        ServiceResponse {
            tenant: tenant.to_string(),
            request: None,
            speaking_secs: speaking_time_secs(OVERLOADED),
            follow_on: None,
            session: None,
            latency_micros: start.elapsed().as_micros() as u64,
            answer,
            degradation: Degradation::None,
        }
    }

    /// Stamp a request's resolved deadline at admission: its own
    /// [`ServiceRequest::deadline`] wins, else the tenant's default
    /// budget, else the front-end-wide default (budgets are measured
    /// from `start`, the submission call's entry). `defaults` memoizes
    /// the per-tenant registry read across one submission call, so a
    /// chunked submission pays it once per distinct tenant.
    fn stamp_deadline(
        &self,
        request: &mut ServiceRequest,
        start: Instant,
        defaults: &mut Vec<(String, Option<Duration>)>,
    ) {
        if request.deadline.is_some() {
            return;
        }
        let tenant_default = match defaults.iter().find(|(name, _)| *name == request.tenant) {
            Some((_, default)) => *default,
            None => {
                let default = self.service.tenant_default_deadline(&request.tenant);
                defaults.push((request.tenant.clone(), default));
                default
            }
        };
        request.deadline = tenant_default
            .or(self.default_deadline)
            .map(|budget| start + budget);
    }

    /// Deadline-driven shedding at a full queue: remove the oldest
    /// queued entry already past its deadline (if any), complete it as
    /// [`Answer::Expired`], and return whether space was freed. Runs
    /// *before* fresh work is shed or blocked, so stale requests nobody
    /// is waiting for anymore are the first to go.
    fn shed_expired(&self, ingress: &mut Ingress) -> bool {
        let now = Instant::now();
        let Some(entry) = take_expired(ingress, now) else {
            return false;
        };
        expire_entry(entry, now, &self.service, &self.shared.counters);
        true
    }

    /// Submit one interactive request. Never blocks under
    /// [`OverloadPolicy::Shed`]: the returned ticket is either admitted
    /// (completed by a serving worker) or already completed with
    /// [`Answer::Overloaded`]. Under [`OverloadPolicy::Block`] the call
    /// waits for queue space instead of shedding at the *global* caps;
    /// tenant-share overflow sheds under both policies.
    pub fn submit(&self, request: ServiceRequest) -> ResponseTicket {
        self.submit_all(std::iter::once(request))
            .pop()
            .expect("one ticket per request")
    }

    /// [`FrontEnd::submit`] for a pipelined burst: admits the whole
    /// chunk under one queue-lock acquisition (one ticket per request,
    /// in order). Admission control is per request — a chunk can come
    /// back partially admitted, partially shed. Gateways that aggregate
    /// traffic should prefer this: it divides the queue synchronization
    /// cost across the chunk.
    pub fn submit_all(
        &self,
        requests: impl IntoIterator<Item = ServiceRequest>,
    ) -> Vec<ResponseTicket> {
        let start = Instant::now();
        let mut tickets = Vec::new();
        let mut admitted = 0usize;
        let mut submitted = 0u64;
        let mut defaults: Vec<(String, Option<Duration>)> = Vec::new();
        let mut ingress = self.shared.ingress.lock().expect("ingress poisoned");
        'requests: for mut request in requests {
            submitted += 1;
            self.stamp_deadline(&mut request, start, &mut defaults);
            loop {
                // Fairness cap first — re-checked after every wake,
                // since the tenant's lane may have filled while this
                // submitter was parked at the global cap. A tenant past
                // its share sheds regardless of headroom and policy.
                let lane_depth = ingress
                    .lanes
                    .get(&request.tenant)
                    .map_or(0, |lane| lane.queued);
                if lane_depth >= self.tenant_share {
                    tickets.push(Ticket::completed(
                        self.shed_response(&request.tenant, start),
                    ));
                    continue 'requests;
                }
                // Global caps: admit, shed, or wait, per policy — after
                // first trying to make room by expiring the oldest
                // queued request already past its deadline.
                if ingress.interactive_queued < self.queue_capacity
                    && ingress.in_flight < self.in_flight_cap
                {
                    break;
                }
                if self.shed_expired(&mut ingress) {
                    continue;
                }
                match self.policy {
                    OverloadPolicy::Shed => {
                        tickets.push(Ticket::completed(
                            self.shed_response(&request.tenant, start),
                        ));
                        continue 'requests;
                    }
                    OverloadPolicy::Block => {
                        self.shared.counters.blocked.fetch_add(1, Ordering::Relaxed);
                        ingress.blocked_interactive += 1;
                        ingress = self
                            .shared
                            .space_interactive
                            .wait(ingress)
                            .expect("ingress poisoned");
                        ingress.blocked_interactive -= 1;
                    }
                }
            }
            let ticket = Ticket::pending();
            let state = &mut *ingress;
            // Fast path: the tenant's lane already exists (no key
            // clone, and an emptied lane keeps its buffers).
            let lane = match state.lanes.get_mut(&request.tenant) {
                Some(lane) => lane,
                None => state.lanes.entry(request.tenant.clone()).or_default(),
            };
            if lane.entries.is_empty() {
                state.rotation.push_back(request.tenant.clone());
            }
            lane.queued += 1;
            lane.entries.push_back(Queued::One(QueuedRespond {
                request,
                ticket: ticket.clone(),
                submitted_at: start,
            }));
            ingress.interactive_queued += 1;
            ingress.in_flight += 1;
            admitted += 1;
            tickets.push(ticket);
        }
        if submitted > 0 {
            self.shared
                .counters
                .submitted
                .fetch_add(submitted, Ordering::Relaxed);
        }
        if admitted > 0 {
            self.shared
                .counters
                .peak_queued
                .fetch_max(ingress.interactive_queued as u64, Ordering::Relaxed);
            for _ in 0..ingress.idle_workers.min(admitted) {
                self.shared.work_ready.notify_one();
            }
        }
        tickets
    }

    /// Submit a whole chunk of requests as *one* queue entry completing
    /// *one* ticket (one response per request, in order). This is the
    /// saturation-throughput shape: the queue handoff, ticket, and
    /// wakeup costs are paid once per chunk instead of once per
    /// request. Admission is all-or-nothing — the chunk counts its full
    /// length against every cap, and an overflowing chunk is shed (or
    /// blocked) as a unit, completing with one [`Answer::Overloaded`]
    /// response per request. A chunk larger than the queue capacity (or
    /// in-flight cap) can never fit and is shed immediately under
    /// *both* policies — blocking would deadlock the submitter. The
    /// chunk is enqueued on the lane of its
    /// first request's tenant, so tenant-homogeneous chunks (the shape
    /// an aggregating gateway produces) keep fairness accounting exact.
    pub fn submit_chunk(&self, mut requests: Vec<ServiceRequest>) -> ChunkTicket {
        let start = Instant::now();
        let len = requests.len();
        if len == 0 {
            return Ticket::completed(Vec::new());
        }
        let mut defaults: Vec<(String, Option<Duration>)> = Vec::new();
        for request in &mut requests {
            self.stamp_deadline(request, start, &mut defaults);
        }
        let lane_tenant = &requests[0].tenant;
        self.shared
            .counters
            .submitted
            .fetch_add(len as u64, Ordering::Relaxed);
        let shed_chunk = |frontend: &FrontEnd| -> ChunkTicket {
            Ticket::completed(
                requests
                    .iter()
                    .map(|request| frontend.shed_response(&request.tenant, start))
                    .collect(),
            )
        };
        // A chunk that exceeds a cap outright can never be admitted:
        // shed it under both policies instead of parking forever.
        if len > self.queue_capacity || len > self.in_flight_cap || len > self.tenant_share {
            return shed_chunk(self);
        }
        let mut ingress = self.shared.ingress.lock().expect("ingress poisoned");
        loop {
            // Re-checked after every wake, like `submit_all`.
            let lane_depth = ingress.lanes.get(lane_tenant).map_or(0, |lane| lane.queued);
            if lane_depth + len > self.tenant_share {
                drop(ingress);
                return shed_chunk(self);
            }
            if ingress.interactive_queued + len <= self.queue_capacity
                && ingress.in_flight + len <= self.in_flight_cap
            {
                break;
            }
            if self.shed_expired(&mut ingress) {
                continue;
            }
            match self.policy {
                OverloadPolicy::Shed => {
                    drop(ingress);
                    return shed_chunk(self);
                }
                OverloadPolicy::Block => {
                    self.shared.counters.blocked.fetch_add(1, Ordering::Relaxed);
                    ingress.blocked_interactive += 1;
                    ingress = self
                        .shared
                        .space_interactive
                        .wait(ingress)
                        .expect("ingress poisoned");
                    ingress.blocked_interactive -= 1;
                }
            }
        }
        let ticket: ChunkTicket = Ticket::pending();
        let state = &mut *ingress;
        let lane = match state.lanes.get_mut(lane_tenant) {
            Some(lane) => lane,
            None => state.lanes.entry(lane_tenant.clone()).or_default(),
        };
        if lane.entries.is_empty() {
            state.rotation.push_back(lane_tenant.clone());
        }
        lane.queued += len;
        lane.entries.push_back(Queued::Chunk {
            requests,
            ticket: ticket.clone(),
            submitted_at: start,
        });
        ingress.interactive_queued += len;
        ingress.in_flight += len;
        self.shared
            .counters
            .peak_queued
            .fetch_max(ingress.interactive_queued as u64, Ordering::Relaxed);
        if ingress.idle_workers > 0 {
            self.shared.work_ready.notify_one();
        }
        ticket
    }

    /// Queue a background job on the control lane, applying the
    /// background-capacity admission check.
    fn submit_background(&self, job: BackgroundJob) -> std::result::Result<(), ()> {
        let mut ingress = self.shared.ingress.lock().expect("ingress poisoned");
        while ingress.background.len() >= self.background_capacity {
            match self.policy {
                OverloadPolicy::Shed => return Err(()),
                OverloadPolicy::Block => {
                    self.shared.counters.blocked.fetch_add(1, Ordering::Relaxed);
                    ingress.blocked_background += 1;
                    ingress = self
                        .shared
                        .space_background
                        .wait(ingress)
                        .expect("ingress poisoned");
                    ingress.blocked_background -= 1;
                }
            }
        }
        ingress.background.push_back(job);
        self.shared
            .counters
            .background_submitted
            .fetch_add(1, Ordering::Relaxed);
        if ingress.idle_workers > 0 {
            self.shared.work_ready.notify_one();
        }
        Ok(())
    }

    /// Register a tenant in the background (the control lane; its
    /// solver batches additionally carry the bulk tag through the
    /// shared pool). The ticket resolves to
    /// [`VoiceService::register_dataset`]'s result, or
    /// [`EngineError::Overloaded`] if the control lane was full under
    /// the shed policy. Panics and internal errors are retried up to
    /// [`FrontEndBuilder::background_retries`] times with exponential
    /// backoff — registration is all-or-nothing service-side, so a
    /// failed attempt leaves nothing behind and the retry starts clean.
    pub fn submit_register(&self, spec: TenantSpec) -> RegisterTicket {
        let ticket: RegisterTicket = Ticket::pending();
        let completion = ticket.clone();
        let tenant = spec.name().to_string();
        let retries = self.background_retries;
        let backoff = self.retry_backoff;
        let shared = Arc::clone(&self.shared);
        let job: BackgroundJob = Box::new(move |service| {
            // Contain panics: the worker survives and the ticket still
            // completes (with `EngineError::Internal` after the last
            // attempt) instead of hanging its waiters.
            let outcome = run_with_retry(
                retries,
                backoff,
                &shared.counters.retried_background,
                || service.register_dataset(spec.clone()),
            );
            completion.complete(outcome);
        });
        if self.submit_background(job).is_err() {
            return Ticket::completed(Err(EngineError::Overloaded { tenant }));
        }
        ticket
    }

    /// Refresh a tenant in the background (the control lane; its solver
    /// batches ride the pool's interactive fast lane so small deltas
    /// are not stuck behind a bulk registration). The ticket resolves
    /// to [`VoiceService::refresh_tenant`]'s result. Panics and
    /// internal errors are retried up to
    /// [`FrontEndBuilder::background_retries`] times with exponential
    /// backoff — safe because a failed refresh is fail-atomic (the
    /// tenant keeps serving its previous store).
    pub fn submit_refresh(
        &self,
        tenant: impl Into<String>,
        dataset: GeneratedDataset,
        changed_rows: Vec<usize>,
    ) -> RefreshTicket {
        let tenant = tenant.into();
        let ticket: RefreshTicket = Ticket::pending();
        let completion = ticket.clone();
        let name = tenant.clone();
        let retries = self.background_retries;
        let backoff = self.retry_backoff;
        let shared = Arc::clone(&self.shared);
        let job: BackgroundJob = Box::new(move |service| {
            let outcome = run_with_retry(
                retries,
                backoff,
                &shared.counters.retried_background,
                || service.refresh_tenant(&name, &dataset, &changed_rows),
            );
            completion.complete(outcome);
        });
        if self.submit_background(job).is_err() {
            return Ticket::completed(Err(EngineError::Overloaded { tenant }));
        }
        ticket
    }

    /// Stream a batch of row deltas into a tenant in the background (the
    /// control lane; the flush's solver batches ride the pool's bulk
    /// lane so interactive solves always pass them). The ticket resolves
    /// to [`VoiceService::ingest`]'s result. Panics and internal errors
    /// are retried up to [`FrontEndBuilder::background_retries`] times —
    /// safe because every injectable failure point precedes acceptance
    /// ([`crate::service::FaultSite::Ingest`] fires before any delta is
    /// stamped) and a failed flush leaves the accepted log intact, so a
    /// retry never double-applies a batch.
    pub fn submit_ingest(&self, tenant: impl Into<String>, deltas: Vec<RowDelta>) -> IngestTicket {
        let tenant = tenant.into();
        let ticket: IngestTicket = Ticket::pending();
        let completion = ticket.clone();
        let name = tenant.clone();
        let retries = self.background_retries;
        let backoff = self.retry_backoff;
        let shared = Arc::clone(&self.shared);
        let batch = deltas.len() as u64;
        let job: BackgroundJob = Box::new(move |service| {
            let outcome = run_with_retry(
                retries,
                backoff,
                &shared.counters.retried_background,
                || service.ingest(&name, &deltas),
            );
            completion.complete(outcome);
        });
        if self.submit_background(job).is_err() {
            return Ticket::completed(Err(EngineError::Overloaded { tenant }));
        }
        self.shared
            .counters
            .ingest_submitted
            .fetch_add(1, Ordering::Relaxed);
        self.shared
            .counters
            .ingest_deltas
            .fetch_add(batch, Ordering::Relaxed);
        ticket
    }

    /// Run an arbitrary closure against the service on the control lane
    /// (evictions, stats dumps, maintenance). Subject to the same
    /// background admission control; the ticket completes after the
    /// closure ran.
    pub fn submit_task(
        &self,
        task: impl FnOnce(&VoiceService) + Send + 'static,
    ) -> std::result::Result<TaskTicket, EngineError> {
        let ticket: TaskTicket = Ticket::pending();
        let completion = ticket.clone();
        let job: BackgroundJob = Box::new(move |service| {
            // A panicking task is contained (the worker survives) and
            // its ticket still completes.
            let _ = catch_unwind(AssertUnwindSafe(|| task(service)));
            completion.complete(());
        });
        match self.submit_background(job) {
            Ok(()) => Ok(ticket),
            Err(()) => Err(EngineError::Overloaded {
                tenant: String::new(),
            }),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FrontEndStats {
        let counters = &self.shared.counters;
        let mut shed_by_tenant: Vec<(String, u64)> = counters
            .shed_by_tenant
            .lock()
            .expect("shed map poisoned")
            .iter()
            .map(|(tenant, count)| (tenant.clone(), *count))
            .collect();
        shed_by_tenant.sort();
        FrontEndStats {
            submitted: counters.submitted.load(Ordering::Relaxed),
            completed: counters.completed.load(Ordering::Relaxed),
            shed: counters.shed.load(Ordering::Relaxed),
            expired: counters.expired.load(Ordering::Relaxed),
            degraded: counters.degraded.load(Ordering::Relaxed),
            blocked: counters.blocked.load(Ordering::Relaxed),
            background_submitted: counters.background_submitted.load(Ordering::Relaxed),
            background_completed: counters.background_completed.load(Ordering::Relaxed),
            retried_background: counters.retried_background.load(Ordering::Relaxed),
            ingest_submitted: counters.ingest_submitted.load(Ordering::Relaxed),
            ingest_deltas: counters.ingest_deltas.load(Ordering::Relaxed),
            peak_queued: counters.peak_queued.load(Ordering::Relaxed),
            contained_panics: counters.contained_panics.load(Ordering::Relaxed),
            flush_ticks: counters.flush_ticks.load(Ordering::Relaxed),
            background_flushes: counters.background_flushes.load(Ordering::Relaxed),
            shed_by_tenant,
        }
    }

    /// Stop admitting, drain every admitted request (all outstanding
    /// tickets complete), and join the workers. Equivalent to dropping
    /// the front-end, made explicit for call sites that want the drain
    /// point visible.
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for FrontEnd {
    fn drop(&mut self) {
        {
            let mut ingress = self.shared.ingress.lock().expect("ingress poisoned");
            ingress.shutdown = true;
        }
        {
            let mut stop = self.flusher_signal.stop.lock().expect("flusher poisoned");
            *stop = true;
        }
        self.flusher_signal.wake.notify_all();
        self.shared.work_ready.notify_all();
        self.shared.space_interactive.notify_all();
        self.shared.space_background.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        if let Some(flusher) = self.flusher.take() {
            let _ = flusher.join();
        }
    }
}

/// Body of the background flusher thread: sleep one tick period (a
/// fixed `period` when configured, else half the shortest streaming
/// tenant's `flush_interval`, re-read every pass and capped at
/// [`FLUSH_TICK_CAP`]), then drain every tenant whose debounce window
/// is open via [`VoiceService::ingest_tick`]. A condvar wait makes the
/// sleep cut short at shutdown, so dropping the front-end never waits
/// out a tick.
///
/// Timing bound: `ingest_tick` flushes a tenant once
/// `last_flush.elapsed() >= flush_interval`, and with a tick period of
/// at most `flush_interval / 2` two consecutive passes always straddle
/// that instant — a lone delta is re-summarized within 1.5× (worst
/// case 2×) its tenant's interval with no further ingest calls.
fn flusher_loop(
    shared: &FrontShared,
    service: &VoiceService,
    signal: &FlusherSignal,
    period: Option<Duration>,
) {
    let mut stop = signal.stop.lock().expect("flusher poisoned");
    loop {
        if *stop {
            return;
        }
        let sleep = period
            .or_else(|| service.min_flush_interval().map(|interval| interval / 2))
            .unwrap_or(FLUSH_TICK_CAP)
            .clamp(FLUSH_TICK_FLOOR, FLUSH_TICK_CAP);
        let (guard, _) = signal
            .wake
            .wait_timeout(stop, sleep)
            .expect("flusher poisoned");
        stop = guard;
        if *stop {
            return;
        }
        drop(stop);
        let flushed = service.ingest_tick();
        shared.counters.flush_ticks.fetch_add(1, Ordering::Relaxed);
        if flushed > 0 {
            shared
                .counters
                .background_flushes
                .fetch_add(flushed as u64, Ordering::Relaxed);
        }
        stop = signal.stop.lock().expect("flusher poisoned");
    }
}

/// One unit of claimed work.
enum Work {
    /// A round-robin batch of interactive entries carrying `requests`
    /// requests in total.
    Respond { batch: Vec<Queued>, requests: usize },
    /// One background job.
    Background(BackgroundJob),
}

/// Remove and return the oldest-submitted *expired* queue entry, fixing
/// up the lane/rotation/in-flight accounting. Only lane fronts are
/// inspected: lanes are FIFO, so each front is its lane's oldest entry
/// and anything behind it has waited strictly less long.
fn take_expired(ingress: &mut Ingress, now: Instant) -> Option<Queued> {
    let mut oldest: Option<(usize, Instant)> = None;
    for (slot, tenant) in ingress.rotation.iter().enumerate() {
        let entry = ingress
            .lanes
            .get(tenant)
            .and_then(|lane| lane.entries.front())
            .expect("rotation entry without queued lane");
        if entry.expired(now) && oldest.is_none_or(|(_, at)| entry.submitted_at() < at) {
            oldest = Some((slot, entry.submitted_at()));
        }
    }
    let (slot, _) = oldest?;
    let tenant = ingress.rotation.remove(slot).expect("slot from enumerate");
    let lane = ingress
        .lanes
        .get_mut(&tenant)
        .expect("rotation entry without lane");
    let entry = lane.entries.pop_front().expect("front entry seen above");
    lane.queued -= entry.len();
    ingress.interactive_queued -= entry.len();
    ingress.in_flight -= entry.len();
    if !lane.entries.is_empty() {
        // The lane keeps its dispatch turn — it merely rejoins the
        // rotation at the back, like after any served entry.
        ingress.rotation.push_back(tenant);
    } else if ingress.lanes.len() > RETAINED_LANES {
        ingress.lanes.remove(&tenant);
    }
    Some(entry)
}

/// Complete an expired entry's ticket and do the accounting: expired
/// requests count in `expired`, *not* `completed` — the invariant is
/// `submitted == completed + shed + expired` — and roll into their
/// tenant's own [`TenantStats::expired_requests`].
///
/// [`TenantStats::expired_requests`]: crate::service::TenantStats::expired_requests
fn expire_entry(entry: Queued, now: Instant, service: &VoiceService, counters: &Counters) {
    counters
        .expired
        .fetch_add(entry.len() as u64, Ordering::Relaxed);
    let queued_for = now.saturating_duration_since(entry.submitted_at());
    match entry {
        Queued::One(queued) => {
            service.record_expired(&queued.request.tenant);
            queued
                .ticket
                .complete(expired_response(&queued.request.tenant, queued_for));
        }
        Queued::Chunk {
            requests, ticket, ..
        } => {
            let responses = requests
                .iter()
                .map(|request| {
                    service.record_expired(&request.tenant);
                    expired_response(&request.tenant, queued_for)
                })
                .collect();
            ticket.complete(responses);
        }
    }
}

/// Claim the next work item: a batch from the interactive lanes if any
/// request is queued, else one background job.
fn next_work(ingress: &mut Ingress) -> Option<Work> {
    // Aging: after BACKGROUND_AGING consecutive interactive batches, one
    // queued background job runs even under sustained interactive load,
    // bounding registration/refresh staleness instead of starving it.
    let background_due =
        ingress.interactive_streak >= BACKGROUND_AGING && !ingress.background.is_empty();
    if ingress.interactive_queued > 0 && !background_due {
        // Leave a fair share for workers currently parked: claiming the
        // whole queue while peers idle would serialize a burst through
        // one thread. Whole entries are claimed, so chunks may overshoot.
        let target = SERVE_BATCH
            .min(
                ingress
                    .interactive_queued
                    .div_ceil(ingress.idle_workers + 1),
            )
            .max(1);
        let mut batch = Vec::new();
        let mut requests = 0usize;
        while requests < target {
            let Some(tenant) = ingress.rotation.pop_front() else {
                break;
            };
            let lane = ingress
                .lanes
                .get_mut(&tenant)
                .expect("rotation entry without lane");
            let entry = lane.entries.pop_front().expect("empty lane in rotation");
            requests += entry.len();
            lane.queued -= entry.len();
            batch.push(entry);
            // Emptied lanes stay in the map (their buffers are reused on
            // the next submit) up to a bounded count; the rotation only
            // lists non-empty lanes.
            if !lane.entries.is_empty() {
                ingress.rotation.push_back(tenant);
            } else if ingress.lanes.len() > RETAINED_LANES {
                ingress.lanes.remove(&tenant);
            }
        }
        ingress.interactive_queued -= requests;
        ingress.interactive_streak += 1;
        return Some(Work::Respond { batch, requests });
    }
    let job = ingress.background.pop_front()?;
    ingress.interactive_streak = 0;
    Some(Work::Background(job))
}

/// Answer one request, resolving each distinct tenant once per batch
/// via `resolved` (the registry read-lock and handle bump come off the
/// per-request path; staleness is bounded by one batch — the same
/// window a request already being served has).
/// [`respond_cached`] with panic containment: a panic completes the
/// request with [`Answer::Internal`] (counted in
/// [`FrontEndStats::contained_panics`]) instead of killing the worker
/// and hanging every waiter behind it.
fn respond_contained(
    service: &VoiceService,
    resolved: &mut Vec<(String, Option<Arc<Tenant>>)>,
    request: ServiceRequest,
    shared: &FrontShared,
) -> ServiceResponse {
    let start = Instant::now();
    catch_unwind(AssertUnwindSafe(|| {
        respond_cached(service, resolved, request)
    }))
    .unwrap_or_else(|payload| {
        shared
            .counters
            .contained_panics
            .fetch_add(1, Ordering::Relaxed);
        contained_panic_response(payload, start)
    })
}

fn respond_cached(
    service: &VoiceService,
    resolved: &mut Vec<(String, Option<Arc<Tenant>>)>,
    request: ServiceRequest,
) -> ServiceResponse {
    let start = Instant::now();
    let tenant = match resolved.iter().find(|(name, _)| *name == request.tenant) {
        Some((_, tenant)) => tenant.clone(),
        None => {
            let tenant = service.resolve_tenant(&request.tenant);
            resolved.push((request.tenant.clone(), tenant.clone()));
            tenant
        }
    };
    match &tenant {
        Some(tenant) => {
            // The deadline was stamped at admission; whatever budget is
            // left bounds live solver work via the degradation ladder.
            let deadline = request.deadline;
            service.respond_owned(tenant, request, start, deadline, Exec::Bulk(&service.pool))
        }
        None => VoiceService::unknown_tenant_response(&request.tenant, start),
    }
}

/// Serving worker body: drain the ingress (interactive lanes first,
/// round-robin across tenants), park when idle, exit once shut down
/// with everything drained.
fn worker_loop(shared: &FrontShared, service: &VoiceService) {
    // Interactive requests completed since this worker last held the
    // ingress lock; folded into the shared state on the next
    // acquisition, so each served batch costs one lock round instead of
    // two.
    let mut finished = 0usize;
    loop {
        let work = {
            let mut ingress = shared.ingress.lock().expect("ingress poisoned");
            if finished > 0 {
                ingress.in_flight -= finished;
                // Wake one parked submitter per freed slot (not all —
                // no thundering herd, but also no submitter left parked
                // while capacity it could use sits free).
                for _ in 0..finished.min(ingress.blocked_interactive) {
                    shared.space_interactive.notify_one();
                }
                finished = 0;
            }
            loop {
                if let Some(work) = next_work(&mut ingress) {
                    break Some(work);
                }
                if ingress.shutdown {
                    break None;
                }
                ingress.idle_workers += 1;
                ingress = shared.work_ready.wait(ingress).expect("ingress poisoned");
                ingress.idle_workers -= 1;
            }
        };
        match work {
            Some(Work::Respond { batch, requests }) => {
                finished = requests;
                let mut resolved: Vec<(String, Option<Arc<Tenant>>)> = Vec::new();
                for entry in batch {
                    // Count *before* completing: a waiter that saw its
                    // ticket resolve must already see it in `completed`
                    // (or `expired`). A request that sat in the queue
                    // past its deadline is never computed — its waiter
                    // stopped listening; the instant Expired answer
                    // frees the worker for requests someone still wants.
                    match entry {
                        Queued::One(queued) => {
                            let now = Instant::now();
                            if queued
                                .request
                                .deadline
                                .is_some_and(|deadline| now >= deadline)
                            {
                                shared.counters.expired.fetch_add(1, Ordering::Relaxed);
                                service.record_expired(&queued.request.tenant);
                                queued.ticket.complete(expired_response(
                                    &queued.request.tenant,
                                    now.saturating_duration_since(queued.submitted_at),
                                ));
                                continue;
                            }
                            let response =
                                respond_contained(service, &mut resolved, queued.request, shared);
                            if response.degradation != Degradation::None {
                                shared.counters.degraded.fetch_add(1, Ordering::Relaxed);
                            }
                            shared.counters.completed.fetch_add(1, Ordering::Relaxed);
                            queued.ticket.complete(response);
                        }
                        Queued::Chunk {
                            requests,
                            ticket,
                            submitted_at,
                        } => {
                            // Contained per request: one panicking
                            // request must not discard its chunk-mates'
                            // computed responses. Expiry is likewise per
                            // request — a chunk straddling its deadline
                            // completes what it can.
                            let mut completed = 0u64;
                            let mut expired = 0u64;
                            let mut degraded = 0u64;
                            let responses: Vec<ServiceResponse> = requests
                                .into_iter()
                                .map(|request| {
                                    let now = Instant::now();
                                    if request.deadline.is_some_and(|deadline| now >= deadline) {
                                        expired += 1;
                                        service.record_expired(&request.tenant);
                                        return expired_response(
                                            &request.tenant,
                                            now.saturating_duration_since(submitted_at),
                                        );
                                    }
                                    let response =
                                        respond_contained(service, &mut resolved, request, shared);
                                    if response.degradation != Degradation::None {
                                        degraded += 1;
                                    }
                                    completed += 1;
                                    response
                                })
                                .collect();
                            if expired > 0 {
                                shared
                                    .counters
                                    .expired
                                    .fetch_add(expired, Ordering::Relaxed);
                            }
                            if degraded > 0 {
                                shared
                                    .counters
                                    .degraded
                                    .fetch_add(degraded, Ordering::Relaxed);
                            }
                            shared
                                .counters
                                .completed
                                .fetch_add(completed, Ordering::Relaxed);
                            ticket.complete(responses);
                        }
                    }
                }
            }
            Some(Work::Background(job)) => {
                // Counted before the job completes its ticket, for the
                // same observability ordering as interactive requests.
                shared
                    .counters
                    .background_completed
                    .fetch_add(1, Ordering::Relaxed);
                job(service);
                let ingress = shared.ingress.lock().expect("ingress poisoned");
                if ingress.blocked_background > 0 {
                    shared.space_background.notify_one();
                }
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Configuration;
    use crate::service::ServiceBuilder;
    use vqs_data::{DimSpec, SynthSpec, TargetSpec};

    fn dataset(seed: u64) -> GeneratedDataset {
        SynthSpec {
            name: "fe".to_string(),
            dims: vec![DimSpec::named("season", &["Winter", "Summer"])],
            targets: vec![TargetSpec::new("delay", 15.0, 8.0, 2.0, (0.0, 60.0))],
            rows: 120,
        }
        .generate(seed, 1.0)
    }

    fn config() -> Configuration {
        Configuration::new("fe", &["season"], &["delay"])
    }

    fn service_with_tenant() -> Arc<VoiceService> {
        let service = Arc::new(ServiceBuilder::new().workers(1).build());
        service
            .register_dataset(TenantSpec::new("fe", dataset(3), config()))
            .unwrap();
        service
    }

    #[test]
    fn silent_tenant_flushes_within_two_intervals() {
        use crate::ingest::IngestBuilder;
        use vqs_relalg::prelude::Value;

        let interval = Duration::from_millis(100);
        let service = Arc::new(ServiceBuilder::new().workers(1).build());
        service
            .register_dataset(
                TenantSpec::new("fe", dataset(3), config())
                    .ingest(IngestBuilder::new().flush_interval(interval)),
            )
            .unwrap();
        let frontend = FrontEnd::builder(Arc::clone(&service)).workers(1).build();
        // One lone delta: far below `max_dirty` and inside the debounce
        // window, so the accepting call coalesces instead of flushing.
        let report = frontend
            .submit_ingest(
                "fe",
                vec![RowDelta::Insert(vec![
                    Value::str("Winter"),
                    Value::Float(9.0),
                ])],
            )
            .wait()
            .unwrap();
        assert!(
            report.flush.is_none(),
            "lone delta must debounce, not flush inline"
        );
        // ... then the tenant goes silent. The background flush tick
        // must drain the log within 2× the interval, no further calls.
        let deadline = Instant::now() + 2 * interval;
        let lag = loop {
            let stats = service.stats();
            let lag = stats
                .tenants
                .iter()
                .find(|t| t.tenant == "fe")
                .expect("tenant registered")
                .ingest_lag;
            if lag == 0 || Instant::now() >= deadline {
                break lag;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        assert_eq!(lag, 0, "silent tenant not flushed within 2x flush_interval");
        let stats = frontend.stats();
        assert!(stats.flush_ticks >= 1);
        assert!(
            stats.background_flushes >= 1,
            "the flush must come from the background tick, not an ingest call"
        );
    }

    #[test]
    fn chunk_round_trips_and_oversized_chunk_sheds_under_block() {
        let service = service_with_tenant();
        let frontend = FrontEnd::builder(Arc::clone(&service))
            .workers(1)
            .queue_capacity(4)
            .policy(OverloadPolicy::Block)
            .build();
        // A fitting chunk is served normally.
        let served = frontend
            .submit_chunk(vec![
                ServiceRequest::new("fe", "delay in Winter?"),
                ServiceRequest::new("fe", "delay in Summer?"),
            ])
            .wait();
        assert_eq!(served.len(), 2);
        assert!(served.iter().all(|r| r.answer.is_speech()));
        // A chunk larger than the queue capacity can never fit: it must
        // shed immediately even under Block (blocking would deadlock).
        let oversized: Vec<ServiceRequest> = (0..8)
            .map(|_| ServiceRequest::new("fe", "delay in Winter?"))
            .collect();
        let responses = frontend.submit_chunk(oversized).wait();
        assert_eq!(responses.len(), 8);
        assert!(responses
            .iter()
            .all(|r| matches!(r.answer, Answer::Overloaded { .. })));
        assert_eq!(frontend.stats().shed, 8);
    }

    #[test]
    fn panicking_task_is_contained_and_the_worker_survives() {
        let service = service_with_tenant();
        let frontend = FrontEnd::builder(Arc::clone(&service)).workers(1).build();
        let ticket = frontend
            .submit_task(|_| panic!("injected task panic"))
            .unwrap();
        // The ticket still completes, and the (only) worker keeps
        // serving afterwards.
        ticket.wait();
        let response = frontend
            .submit(ServiceRequest::new("fe", "delay in Winter?"))
            .wait();
        assert!(response.answer.is_speech());
    }

    #[test]
    fn panicking_registration_resolves_to_an_internal_error() {
        use vqs_core::prelude::{Problem, Summarizer, Summary};
        struct ExplodingSummarizer;
        impl Summarizer for ExplodingSummarizer {
            fn name(&self) -> &'static str {
                "exploding"
            }
            fn summarize(&self, _: &Problem<'_>) -> vqs_core::prelude::Result<Summary> {
                panic!("solver exploded");
            }
        }
        let service = Arc::new(
            ServiceBuilder::new()
                .workers(1)
                .summarizer(ExplodingSummarizer)
                .build(),
        );
        let frontend = FrontEnd::builder(Arc::clone(&service)).workers(1).build();
        let ticket = frontend.submit_register(TenantSpec::new("fe", dataset(3), config()));
        match ticket.wait() {
            Err(EngineError::Internal { what }) => assert!(what.contains("solver exploded")),
            other => panic!("expected a contained panic, got {other:?}"),
        }
        // The worker survived; the (unregistered) tenant answers
        // UnknownTenant through the queue.
        let response = frontend.submit(ServiceRequest::new("fe", "delay?")).wait();
        assert!(matches!(response.answer, Answer::UnknownTenant { .. }));
    }

    #[test]
    fn submit_and_wait_round_trips() {
        let service = service_with_tenant();
        let frontend = FrontEnd::builder(Arc::clone(&service)).workers(2).build();
        let ticket = frontend.submit(ServiceRequest::new("fe", "delay in Winter?"));
        let response = ticket.wait();
        assert!(response.answer.is_speech());
        assert!(ticket.is_ready());
        // Waiting again (or from a clone) observes the same response.
        assert_eq!(ticket.clone().wait().text(), response.text());
        let stats = frontend.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn many_concurrent_submitters_complete() {
        let service = service_with_tenant();
        let frontend = Arc::new(
            FrontEnd::builder(Arc::clone(&service))
                .workers(2)
                .queue_capacity(512)
                .build(),
        );
        let total: usize = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let frontend = Arc::clone(&frontend);
                    scope.spawn(move || {
                        let mut speeches = 0;
                        for _ in 0..50 {
                            let ticket =
                                frontend.submit(ServiceRequest::new("fe", "delay in Summer?"));
                            if ticket.wait().answer.is_speech() {
                                speeches += 1;
                            }
                        }
                        speeches
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|handle| handle.join().unwrap())
                .sum()
        });
        assert_eq!(total, 200);
        let stats = frontend.stats();
        assert_eq!(stats.submitted, 200);
        assert_eq!(stats.completed, 200);
    }

    #[test]
    fn background_register_and_refresh_resolve() {
        let service = service_with_tenant();
        let frontend = FrontEnd::builder(Arc::clone(&service)).workers(1).build();
        let register = frontend.submit_register(TenantSpec::new("fe2", dataset(5), config()));
        let report = register.wait().unwrap();
        assert!(report.speeches > 0);
        let respond = frontend.submit(ServiceRequest::new("fe2", "delay in Winter?"));
        assert!(respond.wait().answer.is_speech());
        let refresh = frontend.submit_refresh("fe2", dataset(5), vec![0, 1]);
        assert_eq!(refresh.wait().unwrap().removed, 0);
        let duplicate = frontend.submit_register(TenantSpec::new("fe2", dataset(5), config()));
        assert!(matches!(
            duplicate.wait(),
            Err(EngineError::DuplicateTenant { .. })
        ));
        let stats = frontend.stats();
        assert_eq!(stats.background_submitted, 3);
        assert_eq!(stats.background_completed, 3);
        // The duplicate registration failed with a typed domain error —
        // deterministic, so it must not have been retried.
        assert_eq!(stats.retried_background, 0);
    }

    #[test]
    fn panic_text_renders_non_string_payloads() {
        assert_eq!(panic_text(Box::new("boom")), "boom");
        assert_eq!(panic_text(Box::new(String::from("heap boom"))), "heap boom");
        assert_eq!(panic_text(Box::new(42u32)), "non-string panic payload");
        assert_eq!(panic_text(Box::new(())), "non-string panic payload");
    }

    #[test]
    fn contained_panic_inside_a_chunk_spares_chunk_mates() {
        use crate::service::{Fault, FaultPlan, FaultSite};
        let plan = Arc::new(FaultPlan::new(9).rule_every(FaultSite::Respond, Fault::Panic, 2));
        let service = Arc::new(
            ServiceBuilder::new()
                .workers(1)
                .fault_plan(Arc::clone(&plan))
                .build(),
        );
        service
            .register_dataset(TenantSpec::new("fe", dataset(3), config()))
            .unwrap();
        let frontend = FrontEnd::builder(Arc::clone(&service)).workers(1).build();
        plan.arm();
        let responses = frontend
            .submit_chunk(vec![
                ServiceRequest::new("fe", "delay in Winter?"),
                ServiceRequest::new("fe", "delay in Summer?"),
            ])
            .wait();
        plan.disarm();
        // The every-2nd-draw rule spares the first request and panics
        // the second; containment preserves the chunk-mate's response.
        assert!(responses[0].answer.is_speech());
        assert!(matches!(responses[1].answer, Answer::Internal { .. }));
        let stats = frontend.stats();
        assert_eq!(stats.contained_panics, 1);
        // A contained panic still counts as completed: the ticket
        // resolved with an answer.
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn queue_expired_requests_complete_as_expired() {
        let service = Arc::new(ServiceBuilder::new().workers(1).build());
        service
            .register_dataset(
                TenantSpec::new("fe", dataset(3), config()).default_deadline(Duration::ZERO),
            )
            .unwrap();
        let frontend = FrontEnd::builder(Arc::clone(&service)).workers(1).build();
        // The tenant default stamps a zero budget: the worker's expiry
        // check fires before any computation happens.
        let response = frontend
            .submit(ServiceRequest::new("fe", "delay in Winter?"))
            .wait();
        match response.answer {
            Answer::Expired { ref tenant, .. } => assert_eq!(tenant, "fe"),
            ref other => panic!("expected Expired, got {other:?}"),
        }
        // Expired requests count as expired, NOT completed:
        // submitted == completed + shed + expired.
        let stats = frontend.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.shed, 0);
        // ... and roll into the tenant's own counters.
        let tenant_stats = &service.stats().tenants[0];
        assert_eq!(tenant_stats.expired_requests, 1);
        assert_eq!(tenant_stats.requests, 0);
        // A per-request deadline overrides the tenant default.
        let response = frontend
            .submit(
                ServiceRequest::new("fe", "delay in Winter?").with_budget(Duration::from_secs(60)),
            )
            .wait();
        assert!(response.answer.is_speech());
    }

    #[test]
    fn admission_sheds_the_oldest_expired_request_first() {
        let service = service_with_tenant();
        let frontend = FrontEnd::builder(Arc::clone(&service))
            .workers(1)
            .queue_capacity(2)
            .tenant_share(8)
            .build();
        // Hold the only worker in a gate task so admitted requests stay
        // queued (background runs because nothing interactive is queued
        // yet).
        let gate = Arc::new((Mutex::new(true), Condvar::new()));
        let entered = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let in_gate = {
            let gate = Arc::clone(&gate);
            let entered = Arc::clone(&entered);
            frontend
                .submit_task(move |_| {
                    entered.store(true, Ordering::SeqCst);
                    let (closed, released) = &*gate;
                    let mut closed = closed.lock().unwrap();
                    while *closed {
                        closed = released.wait(closed).unwrap();
                    }
                })
                .unwrap()
        };
        while !entered.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        // Fill the queue: one instantly-expired request, one fresh one.
        let stale = frontend
            .submit(ServiceRequest::new("fe", "delay in Winter?").with_budget(Duration::ZERO));
        let fresh = frontend.submit(
            ServiceRequest::new("fe", "delay in Winter?").with_budget(Duration::from_secs(60)),
        );
        // The queue (capacity 2) is full. The next submission makes
        // room by expiring the stale entry instead of shedding anyone.
        let newcomer = frontend.submit(
            ServiceRequest::new("fe", "delay in Summer?").with_budget(Duration::from_secs(60)),
        );
        assert!(stale.is_ready(), "expired entry not shed at admission");
        assert!(matches!(stale.wait().answer, Answer::Expired { .. }));
        let (closed, released) = &*gate;
        *closed.lock().unwrap() = false;
        released.notify_all();
        assert!(fresh.wait().answer.is_speech());
        assert!(newcomer.wait().answer.is_speech());
        in_gate.wait();
        let stats = frontend.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn background_refresh_retries_injected_internal_faults() {
        use crate::service::{Fault, FaultPlan, FaultSite};
        let plan =
            Arc::new(FaultPlan::new(11).rule_every(FaultSite::Refresh, Fault::SolverTimeout, 2));
        let service = Arc::new(
            ServiceBuilder::new()
                .workers(1)
                .fault_plan(Arc::clone(&plan))
                .build(),
        );
        service
            .register_dataset(TenantSpec::new("fe", dataset(3), config()))
            .unwrap();
        let frontend = FrontEnd::builder(Arc::clone(&service)).workers(1).build();
        // Burn draw 0 so the every-2nd-draw rule fires on the first
        // refresh attempt (draw 1) and clears on the retry (draw 2).
        plan.arm();
        assert!(!plan.impose(FaultSite::Refresh));
        let refresh = frontend.submit_refresh("fe", dataset(3), vec![0, 1]);
        assert!(refresh.wait().is_ok(), "retry should have recovered");
        plan.disarm();
        let stats = frontend.stats();
        assert_eq!(stats.retried_background, 1);
        assert_eq!(stats.background_submitted, 1);
        assert_eq!(stats.background_completed, 1);
    }

    #[test]
    fn unknown_tenant_flows_through_the_queue() {
        let service = service_with_tenant();
        let frontend = FrontEnd::builder(service).workers(1).build();
        let ticket = frontend.submit(ServiceRequest::new("nope", "delay?"));
        assert!(matches!(ticket.wait().answer, Answer::UnknownTenant { .. }));
    }

    #[test]
    fn shutdown_drains_outstanding_tickets() {
        let service = service_with_tenant();
        let frontend = FrontEnd::builder(Arc::clone(&service))
            .workers(1)
            .queue_capacity(256)
            .build();
        let tickets: Vec<ResponseTicket> = (0..64)
            .map(|_| frontend.submit(ServiceRequest::new("fe", "delay in Winter?")))
            .collect();
        frontend.shutdown();
        for ticket in tickets {
            assert!(ticket.is_ready(), "ticket lost across shutdown");
            assert!(ticket.wait().answer.is_speech());
        }
    }

    #[test]
    fn wait_timeout_expires_and_then_resolves() {
        let service = service_with_tenant();
        let frontend = FrontEnd::builder(Arc::clone(&service)).workers(1).build();
        // A held gate task keeps the only worker busy. Wait until the
        // worker actually entered it: an interactive request submitted
        // earlier would (correctly) be served first.
        let gate = Arc::new((Mutex::new(true), Condvar::new()));
        let entered = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let in_gate = {
            let gate = Arc::clone(&gate);
            let entered = Arc::clone(&entered);
            frontend
                .submit_task(move |_| {
                    entered.store(true, Ordering::SeqCst);
                    let (closed, released) = &*gate;
                    let mut closed = closed.lock().unwrap();
                    while *closed {
                        closed = released.wait(closed).unwrap();
                    }
                })
                .unwrap()
        };
        while !entered.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        let ticket = frontend.submit(ServiceRequest::new("fe", "delay in Winter?"));
        assert!(ticket.wait_timeout(Duration::from_millis(20)).is_none());
        let (closed, released) = &*gate;
        *closed.lock().unwrap() = false;
        released.notify_all();
        assert!(ticket
            .wait_timeout(Duration::from_secs(30))
            .unwrap()
            .answer
            .is_speech());
        in_gate.wait();
    }
}
