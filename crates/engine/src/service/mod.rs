//! The multi-tenant deployment facade (the primary public API).
//!
//! The paper's Fig. 2 architecture is a long-running *service*:
//! pre-processing fills a speech store that then answers live voice
//! traffic. [`VoiceService`] packages that architecture for production:
//! it owns a registry of named **tenants** (each tenant = one dataset +
//! [`Configuration`] + its own sharded [`SpeechStore`] + per-tenant
//! instrumentation roll-up), runs every tenant's pre-processing and
//! delta refreshes on one **shared long-lived [`SolverPool`]**, and
//! answers requests through a typed pipeline
//! [`ServiceRequest`] → [`ServiceResponse`] whose [`Answer`] enum
//! replaces the stringly `VoiceResponse` of the old free-function API.
//!
//! ```
//! use vqs_engine::prelude::*;
//! use vqs_data::{DimSpec, SynthSpec, TargetSpec};
//!
//! let data = SynthSpec {
//!     name: "demo".into(),
//!     dims: vec![DimSpec::named("season", &["Winter", "Summer"])],
//!     targets: vec![TargetSpec::new("delay", 15.0, 6.0, 2.0, (0.0, 60.0))],
//!     rows: 200,
//! }.generate(1, 1.0);
//! let config = Configuration::new("demo", &["season"], &["delay"]);
//!
//! let service = ServiceBuilder::new().workers(2).build();
//! let report = service
//!     .register_dataset(TenantSpec::new("demo", data, config))
//!     .unwrap();
//! assert_eq!(report.speeches, 3); // overall + two seasons
//!
//! let response = service.respond(&ServiceRequest::new("demo", "delay in Winter?"));
//! assert!(matches!(response.answer, Answer::Speech { .. }));
//! ```

pub mod faults;
pub mod frontend;
pub mod pool;

pub use faults::{Fault, FaultPlan, FaultSite, Trigger};
pub use frontend::{
    ChunkTicket, FrontEnd, FrontEndBuilder, FrontEndStats, IngestTicket, OverloadPolicy,
    RefreshTicket, RegisterTicket, ResponseTicket, TaskTicket, Ticket,
};
pub use pool::{ScatterPriority, SolverPool};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use vqs_core::prelude::{GreedySummarizer, Instrumentation, Summarizer};
use vqs_data::GeneratedDataset;
use vqs_relalg::hash::FxHashMap;
use vqs_relalg::ops::{self, ProjectItem};
use vqs_relalg::prelude::Table;

use crate::config::Configuration;
use crate::error::{EngineError, Result};
use crate::extensions::ExtremumIndex;
use crate::generator::{
    preprocess_with, refresh_with, resummarize_with, target_relation, Invalidation,
    PreprocessOptions, PreprocessReport, RefreshReport, Workers,
};
use crate::ingest::{FlushReport, IngestBuilder, IngestInner, IngestReport, IngestState, RowDelta};
use crate::logsim::{tabulate, LogEntry};
use crate::nlq::{Extractor, Request, Unsupported};
use crate::pipeline::{self, ComputedValue, Exec, FollowOn, PipelineContext, QueryPlan};
use crate::problem::StoredSpeech;
use crate::store::{SpeechStore, StoreStats};
use crate::template::{speaking_time_secs, SpeechTemplate};
use crate::voice::VoiceSession;

/// Spoken fallback when a supported query has no stored speech.
pub(crate) const NO_SUMMARY: &str = "I have no summary for that topic yet.";
/// Spoken fallback for unintelligible input.
pub(crate) const NOT_UNDERSTOOD: &str = "Sorry, I did not understand. Say 'help' for examples.";
/// Spoken fallback for a repeat request with no conversation history.
pub(crate) const NOTHING_TO_REPEAT: &str = "I have not said anything yet.";
/// Apology for extremum queries with no extension index.
pub(crate) const EXTREMUM_APOLOGY: &str = "I can only summarize averages, not find extremes.";
/// Apology for comparison queries with no extension index.
pub(crate) const COMPARISON_APOLOGY: &str =
    "I cannot compare data subsets directly; ask about one subset at a time.";
/// Apology for count/total aggregates when no live table is retained.
pub(crate) const AGGREGATE_APOLOGY: &str =
    "I can only summarize averages, not compute counts or totals.";
/// Apology for conjunctive queries beyond the pre-computed length when
/// no live table is retained.
pub(crate) const CONJUNCTIVE_APOLOGY: &str =
    "That question combines more filters than I pre-computed.";
/// Apology for data outside the deployment.
pub(crate) const UNAVAILABLE: &str = "That data is not part of this deployment.";
/// Spoken text of [`Answer::UnknownTenant`].
pub(crate) const UNKNOWN_TENANT: &str = "I do not know that data set.";
/// Spoken text of [`Answer::Overloaded`].
pub(crate) const OVERLOADED: &str = "I am handling too many requests right now; please try again.";
/// Spoken text of [`Answer::Internal`].
pub(crate) const INTERNAL_ERROR: &str = "Something went wrong on my end; please try again.";
/// Spoken text of [`Answer::Expired`].
pub(crate) const EXPIRED: &str = "I could not get to that in time; please ask again.";

/// One incoming voice request, addressed to a tenant by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceRequest {
    /// Registered tenant (dataset) the request targets.
    pub tenant: String,
    /// Raw utterance text.
    pub text: String,
    /// Absolute wall-clock deadline of this request. `None` falls back
    /// to the tenant's [`TenantSpec::default_deadline`], then to the
    /// serving front-end's service-wide default (if any). Once past the
    /// deadline a queued request is completed with [`Answer::Expired`]
    /// instead of being computed, and the remaining budget bounds live
    /// solver work on the respond path.
    pub deadline: Option<Instant>,
}

impl ServiceRequest {
    /// Build a request with no per-request deadline.
    pub fn new(tenant: impl Into<String>, text: impl Into<String>) -> ServiceRequest {
        ServiceRequest {
            tenant: tenant.into(),
            text: text.into(),
            deadline: None,
        }
    }

    /// Set an absolute deadline (overrides tenant and service defaults).
    pub fn with_deadline(mut self, deadline: Instant) -> ServiceRequest {
        self.deadline = Some(deadline);
        self
    }

    /// Set the deadline as a budget from now.
    pub fn with_budget(self, budget: Duration) -> ServiceRequest {
        self.with_deadline(Instant::now() + budget)
    }
}

/// How far down the answer-quality ladder a response had to step to
/// meet its deadline. Stamped on every [`ServiceResponse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Degradation {
    /// Full-quality answer (always the case for deadline-free requests).
    #[default]
    None,
    /// The budgeted live solve timed out; a poly-time greedy pass
    /// produced the speech instead (valid, merely non-optimal).
    Greedy,
    /// No budget remained for live work; the answer came from the store
    /// (or a typed apology) alone.
    StoreOnly,
}

/// What the service answered — the typed replacement for the old
/// text-only response. Every variant still carries (or derives) a spoken
/// form via [`Answer::text`], but callers can now branch on structure
/// instead of string-matching.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// A pre-generated speech served from the tenant's store.
    Speech {
        /// The stored speech (shared, never deep-copied).
        speech: Arc<StoredSpeech>,
        /// `None` for an exact hit; `Some(k)` when the §III
        /// generalization fallback answered with `k` of the query's
        /// predicates retained.
        kept_predicates: Option<usize>,
    },
    /// Answered by a pre-computed extension index (extremum/comparison).
    Extension {
        /// Spoken answer.
        text: String,
    },
    /// Computed live by executing a typed [`QueryPlan`] over the
    /// tenant's retained table (the pipeline's tier two): questions the
    /// store does not precompute — conjunctive filters beyond the
    /// configured length, comparatives, extrema, counts and totals.
    Computed {
        /// The logical plan that was executed.
        plan: QueryPlan,
        /// The typed result the spoken text was rendered from.
        value: ComputedValue,
        /// Spoken rendering of `value`.
        text: String,
    },
    /// Usage guidance: explicit help requests, unintelligible input, and
    /// repeat requests without history all resolve here.
    Help {
        /// Spoken guidance.
        text: String,
    },
    /// A recognized data-access request the deployment cannot answer.
    Unsupported {
        /// Why the request is unsupported.
        reason: Unsupported,
        /// Spoken apology.
        text: String,
    },
    /// A supported query with no stored speech — distinct from
    /// [`Answer::Unsupported`] so callers can tell "nothing generated
    /// for this combination (yet)" from "outside the deployment".
    NoSummary {
        /// The classified query that missed.
        query: crate::problem::Query,
    },
    /// The request named a tenant that is not registered.
    UnknownTenant {
        /// The unknown tenant name.
        tenant: String,
    },
    /// The serving front-end shed this request before it reached a
    /// tenant: the admission queue (or the tenant's fair share of it)
    /// was full. Produced only by [`crate::service::FrontEnd`] — the
    /// direct [`VoiceService::respond`] path never sheds.
    Overloaded {
        /// The tenant the rejected request addressed.
        tenant: String,
    },
    /// A serving worker contained a panic while answering this request;
    /// the ticket completed with this marker instead of hanging its
    /// waiter. Produced only by [`crate::service::FrontEnd`]; indicates
    /// a bug worth reporting, not load.
    Internal {
        /// The contained panic payload, when it was a string.
        what: String,
    },
    /// The request sat in the serving queue past its deadline and was
    /// completed without computing an answer — in voice UX a fast "ask
    /// again" beats a stale answer nobody is waiting for. Produced only
    /// by [`crate::service::FrontEnd`]; the direct
    /// [`VoiceService::respond`] path never queues.
    Expired {
        /// The tenant the expired request addressed.
        tenant: String,
        /// How long the request had been queued when it expired.
        queued_for: Duration,
    },
}

impl Answer {
    /// The spoken form of this answer.
    pub fn text(&self) -> &str {
        match self {
            Answer::Speech { speech, .. } => &speech.text,
            Answer::Extension { text }
            | Answer::Computed { text, .. }
            | Answer::Help { text }
            | Answer::Unsupported { text, .. } => text,
            Answer::NoSummary { .. } => NO_SUMMARY,
            Answer::UnknownTenant { .. } => UNKNOWN_TENANT,
            Answer::Overloaded { .. } => OVERLOADED,
            Answer::Internal { .. } => INTERNAL_ERROR,
            Answer::Expired { .. } => EXPIRED,
        }
    }

    /// True when a pre-generated speech was served.
    pub fn is_speech(&self) -> bool {
        matches!(self, Answer::Speech { .. })
    }
}

/// One answered request: the classification, the typed answer, and the
/// latency/speaking-time accounting of the old response type.
#[derive(Debug, Clone)]
pub struct ServiceResponse {
    /// The tenant that answered (echoed from the request; empty for
    /// free-standing sessions without a tenant label).
    pub tenant: String,
    /// The classified request; `None` only when the tenant was unknown
    /// (no extractor exists to classify against).
    pub request: Option<Request>,
    /// The typed answer.
    pub answer: Answer,
    /// A suggested follow-on question drawn from summaries adjacent to
    /// the answered query, when one exists. Only store-served and
    /// live-computed answers carry hints.
    pub follow_on: Option<FollowOn>,
    /// The stable id of the [`VoiceSession`] that answered, `None` for
    /// stateless [`VoiceService::respond`] traffic — lets front-end and
    /// log consumers attribute load to individual conversations.
    pub session: Option<u64>,
    /// Classification + lookup latency in microseconds (time until the
    /// system can start speaking).
    pub latency_micros: u64,
    /// Estimated speaking time of the answer, in seconds.
    pub speaking_secs: f64,
    /// How far the answer degraded to meet the request deadline
    /// ([`Degradation::None`] for every deadline-free request).
    pub degradation: Degradation,
}

impl ServiceResponse {
    /// The spoken form of the answer.
    pub fn text(&self) -> &str {
        self.answer.text()
    }

    /// Table III row label of the classified request ("Unknown" when the
    /// tenant did not resolve).
    pub fn label(&self) -> &'static str {
        self.request.as_ref().map_or("Unknown", Request::label)
    }
}

/// Everything needed to register one tenant: the dataset, its
/// configuration, and the optional speech/extractor customizations that
/// used to be wired by hand around the free functions.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    name: String,
    dataset: GeneratedDataset,
    config: Configuration,
    help_text: Option<String>,
    templates: FxHashMap<String, SpeechTemplate>,
    synonyms: Vec<(String, Vec<String>)>,
    unavailable_markers: Vec<String>,
    extremum: Option<(String, String)>,
    default_deadline: Option<Duration>,
    ingest: Option<IngestBuilder>,
}

impl TenantSpec {
    /// A tenant with default speech templates and an auto-generated help
    /// text.
    pub fn new(
        name: impl Into<String>,
        dataset: GeneratedDataset,
        config: Configuration,
    ) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            dataset,
            config,
            help_text: None,
            templates: FxHashMap::default(),
            synonyms: Vec::new(),
            unavailable_markers: Vec::new(),
            extremum: None,
            default_deadline: None,
            ingest: None,
        }
    }

    /// The tenant name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Override the spoken help text.
    pub fn help_text(mut self, text: impl Into<String>) -> TenantSpec {
        self.help_text = Some(text.into());
        self
    }

    /// Use `template` for speeches of `target` (defaults to
    /// [`SpeechTemplate::plain`]).
    pub fn template(mut self, target: &str, template: SpeechTemplate) -> TenantSpec {
        self.templates.insert(target.to_string(), template);
        self
    }

    /// Register spoken synonyms for a target column ("a few samples" of
    /// phrasings, §III).
    pub fn target_synonyms(mut self, target: &str, synonyms: &[&str]) -> TenantSpec {
        self.synonyms.push((
            target.to_string(),
            synonyms.iter().map(|s| s.to_string()).collect(),
        ));
        self
    }

    /// Register phrases marking data the deployment does not cover.
    pub fn unavailable_markers(mut self, markers: &[&str]) -> TenantSpec {
        self.unavailable_markers
            .extend(markers.iter().map(|m| m.to_string()));
        self
    }

    /// Pre-compute the extremum/comparison extension index for `target`,
    /// spoken as `phrase` (answers the §VIII-D "U-Query" shapes).
    pub fn extremum_index(mut self, target: &str, phrase: &str) -> TenantSpec {
        self.extremum = Some((target.to_string(), phrase.to_string()));
        self
    }

    /// Default per-request deadline budget for this tenant: requests
    /// without their own [`ServiceRequest::deadline`] get `now + budget`
    /// on arrival. Overrides the serving front-end's service-wide
    /// default ([`FrontEndBuilder::default_deadline`]).
    pub fn default_deadline(mut self, budget: Duration) -> TenantSpec {
        self.default_deadline = Some(budget);
        self
    }

    /// Enable streaming ingestion for this tenant: the service retains a
    /// materialized copy of the dataset and accepts row deltas through
    /// [`VoiceService::ingest`] / [`FrontEnd::submit_ingest`], debounced
    /// and re-summarized per `options` (see
    /// [`crate::ingest`] for the dataflow and its convergence contract).
    pub fn ingest(mut self, options: IngestBuilder) -> TenantSpec {
        self.ingest = Some(options);
        self
    }
}

/// Per-request counters of one tenant, updated with relaxed atomics on
/// the respond path. Shared (via [`std::sync::Arc`]) with every
/// [`VoiceSession`] opened on the tenant, so session traffic shows up
/// in the same per-tenant roll-up the front-end's fairness accounting
/// reads.
#[derive(Debug, Default)]
pub(crate) struct RequestCounters {
    requests: AtomicU64,
    speeches: AtomicU64,
    extensions: AtomicU64,
    computed: AtomicU64,
    helps: AtomicU64,
    unsupported: AtomicU64,
    misses: AtomicU64,
    sessions: AtomicU64,
    /// Requests expired in the serving queue (never computed, so not
    /// part of `requests`).
    expired: AtomicU64,
    /// Answers served below full quality to meet their deadline.
    degraded: AtomicU64,
}

impl RequestCounters {
    /// Account one answered request. `UnknownTenant`/`Overloaded` never
    /// reach a tenant's counters (they are produced before a tenant
    /// resolves), so they only bump the request total here; `Expired`
    /// requests are accounted via [`RequestCounters::record_expired`]
    /// instead (they were never computed).
    pub(crate) fn record(&self, answer: &Answer, degradation: Degradation) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if degradation != Degradation::None {
            self.degraded.fetch_add(1, Ordering::Relaxed);
        }
        let kind = match answer {
            Answer::Speech { .. } => &self.speeches,
            Answer::Extension { .. } => &self.extensions,
            Answer::Computed { .. } => &self.computed,
            Answer::Help { .. } => &self.helps,
            Answer::Unsupported { .. } => &self.unsupported,
            Answer::NoSummary { .. } => &self.misses,
            Answer::UnknownTenant { .. }
            | Answer::Overloaded { .. }
            | Answer::Internal { .. }
            | Answer::Expired { .. } => return,
        };
        kind.fetch_add(1, Ordering::Relaxed);
    }

    /// Account one request expired in the serving queue.
    pub(crate) fn record_expired(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
    }
}

/// Pre-processing/refresh accounting of one tenant, merged across its
/// lifetime.
#[derive(Debug)]
struct TenantRollup {
    preprocess: PreprocessReport,
    refreshes: u64,
    recomputed: u64,
    removed: u64,
    solver: Instrumentation,
    solver_time: Duration,
}

/// The answer-time state rebuilt after every refresh (dictionaries may
/// gain values, the live table follows the data).
#[derive(Debug)]
pub(crate) struct TenantRuntime {
    pub(crate) extractor: Extractor,
    pub(crate) extensions: Option<ExtremumIndex>,
    /// The tenant's data, projected to its configured dimension and
    /// target columns — the pipeline's tier-two execution input.
    pub(crate) live: Option<Arc<Table>>,
}

/// One registered deployment.
pub(crate) struct Tenant {
    name: String,
    config: Configuration,
    help_text: String,
    templates: FxHashMap<String, SpeechTemplate>,
    synonyms: Vec<(String, Vec<String>)>,
    unavailable_markers: Vec<String>,
    extremum: Option<(String, String)>,
    /// Default deadline budget stamped onto requests that carry none.
    default_deadline: Option<Duration>,
    store: Arc<SpeechStore>,
    /// Serializes refreshes per tenant. The raw dataset itself is *not*
    /// retained — callers hand the current data to
    /// [`VoiceService::refresh_tenant`] — but the runtime keeps a
    /// projection of it onto the configured dimension and target
    /// columns, so the pipeline's live tier can answer questions the
    /// store does not precompute. A tenant's resident cost is its store
    /// plus dictionaries plus that bounded projection.
    refresh_lock: Mutex<()>,
    /// Shared with every open [`VoiceSession`], so refreshed extractor
    /// dictionaries reach live sessions immediately.
    runtime: Arc<RwLock<TenantRuntime>>,
    rollup: Mutex<TenantRollup>,
    counters: Arc<RequestCounters>,
    /// Streaming-ingestion state (the materialized table, delta log, and
    /// dirty sets); `None` unless the tenant opted in via
    /// [`TenantSpec::ingest`].
    ingest: Option<IngestState>,
}

impl Tenant {
    /// Build the extractor (and optional extension index) for `dataset`.
    fn build_runtime(
        dataset: &GeneratedDataset,
        config: &Configuration,
        synonyms: &[(String, Vec<String>)],
        unavailable_markers: &[String],
        extremum: &Option<(String, String)>,
    ) -> Result<TenantRuntime> {
        let mut extractor = Extractor::for_deployment(dataset, config)?;
        for (target, phrases) in synonyms {
            let phrases: Vec<&str> = phrases.iter().map(String::as_str).collect();
            extractor = extractor.with_target_synonyms(target, &phrases);
        }
        if !unavailable_markers.is_empty() {
            let markers: Vec<&str> = unavailable_markers.iter().map(String::as_str).collect();
            extractor = extractor.with_unavailable_markers(&markers);
        }
        let extensions = match extremum {
            Some((target, phrase)) => Some(ExtremumIndex::build(
                &target_relation(dataset, config, target)?,
                phrase,
            )),
            None => None,
        };
        let mut projection = Vec::new();
        for column in config.dimensions.iter().chain(&config.targets) {
            projection.push(ProjectItem::passthrough(&dataset.table, column)?);
        }
        let live = Arc::new(ops::project(&dataset.table, &projection)?);
        Ok(TenantRuntime {
            extractor,
            extensions,
            live: Some(live),
        })
    }
}

/// Point-in-time statistics of one tenant.
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// Tenant name.
    pub tenant: String,
    /// Speeches currently stored.
    pub speeches: usize,
    /// Queries enumerated by the initial pre-processing.
    pub queries: usize,
    /// Requests answered via [`VoiceService::respond`].
    pub requests: u64,
    /// Requests answered with a stored speech.
    pub speech_answers: u64,
    /// Requests answered by an extension index.
    pub extension_answers: u64,
    /// Requests answered by live plan execution ([`Answer::Computed`]).
    pub computed_answers: u64,
    /// Requests answered with usage guidance.
    pub help_answers: u64,
    /// Requests answered with an apology.
    pub unsupported_answers: u64,
    /// Supported queries with no stored speech ([`Answer::NoSummary`]).
    pub miss_answers: u64,
    /// Requests expired in the serving queue past their deadline
    /// (completed with [`Answer::Expired`], never computed — not part
    /// of `requests`).
    pub expired_requests: u64,
    /// Answers served below full quality to meet their deadline
    /// ([`ServiceResponse::degradation`] ≠ [`Degradation::None`]).
    pub degraded_answers: u64,
    /// Sessions opened on this tenant via [`VoiceService::session`].
    pub sessions_opened: u64,
    /// Completed [`VoiceService::refresh_tenant`] runs.
    pub refreshes: u64,
    /// Speeches recomputed across all refreshes.
    pub recomputed: u64,
    /// Speeches removed across all refreshes.
    pub removed: u64,
    /// Row deltas drained into the store through streaming-ingestion
    /// flushes (zero for tenants without [`TenantSpec::ingest`]).
    pub deltas_applied: u64,
    /// Stored summaries invalidated (re-solved or removed) by
    /// streaming-ingestion flushes.
    pub summaries_invalidated: u64,
    /// Summaries re-solved and swapped in by streaming-ingestion
    /// flushes.
    pub summaries_resummarized: u64,
    /// Newest-accepted minus newest-applied ingest sequence number: how
    /// far the store currently trails the delta log (zero once the log
    /// drained).
    pub ingest_lag: u64,
    /// Run-time store counters.
    pub store: StoreStats,
    /// Solver work counters, merged over pre-processing and refreshes.
    pub solver: Instrumentation,
    /// Wall-clock solver time, summed over pre-processing and refreshes.
    pub solver_time: Duration,
}

/// Aggregated statistics of the whole service.
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Per-tenant roll-ups, sorted by tenant name.
    pub tenants: Vec<TenantStats>,
}

impl ServiceStats {
    /// Requests answered across all tenants.
    pub fn total_requests(&self) -> u64 {
        self.tenants.iter().map(|t| t.requests).sum()
    }

    /// Speeches stored across all tenants.
    pub fn total_speeches(&self) -> usize {
        self.tenants.iter().map(|t| t.speeches).sum()
    }

    /// Store counters summed across all tenants.
    pub fn store_totals(&self) -> StoreStats {
        let mut totals = StoreStats::default();
        for tenant in &self.tenants {
            totals.merge(&tenant.store);
        }
        totals
    }

    /// Solver work counters summed across all tenants.
    pub fn solver_totals(&self) -> Instrumentation {
        let mut totals = Instrumentation::default();
        for tenant in &self.tenants {
            totals.merge(&tenant.solver);
        }
        totals
    }
}

/// Deferred summarizer construction: the algorithm may want a handle to
/// the service's pool (built later, in [`ServiceBuilder::build`]) to
/// route its inner search fan-out through it.
type SummarizerFactory = Box<dyn FnOnce(Arc<SolverPool>) -> Arc<dyn Summarizer + Send + Sync>>;

/// Configures and builds a [`VoiceService`].
pub struct ServiceBuilder {
    workers: usize,
    summarizer: Option<SummarizerFactory>,
    faults: Option<Arc<FaultPlan>>,
}

impl Default for ServiceBuilder {
    fn default() -> ServiceBuilder {
        ServiceBuilder::new()
    }
}

impl std::fmt::Debug for ServiceBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceBuilder")
            .field("workers", &self.workers)
            .field("summarizer", &self.summarizer.is_some())
            .field("faults", &self.faults.is_some())
            .finish()
    }
}

impl ServiceBuilder {
    /// Start from the defaults: all available cores, the optimized
    /// greedy summarizer, no fault injection.
    pub fn new() -> ServiceBuilder {
        ServiceBuilder {
            workers: 0,
            summarizer: None,
            faults: None,
        }
    }

    /// Solver pool threads shared by every tenant (`0` = all cores).
    pub fn workers(mut self, workers: usize) -> ServiceBuilder {
        self.workers = workers;
        self
    }

    /// Summarization algorithm used for every tenant's pre-processing
    /// and refreshes (default: [`GreedySummarizer::with_optimized_pruning`]).
    pub fn summarizer(
        mut self,
        summarizer: impl Summarizer + Send + Sync + 'static,
    ) -> ServiceBuilder {
        let shared: Arc<dyn Summarizer + Send + Sync> = Arc::new(summarizer);
        self.summarizer = Some(Box::new(move |_| shared));
        self
    }

    /// Like [`ServiceBuilder::summarizer`], for an already-boxed
    /// algorithm (e.g. one picked at run time).
    pub fn summarizer_box(
        mut self,
        summarizer: Box<dyn Summarizer + Send + Sync>,
    ) -> ServiceBuilder {
        let shared: Arc<dyn Summarizer + Send + Sync> = Arc::from(summarizer);
        self.summarizer = Some(Box::new(move |_| shared));
        self
    }

    /// Build the summarizer *from the service's own pool*: `factory`
    /// receives the shared [`SolverPool`] once it exists, so algorithms
    /// whose inner search fans out (e.g.
    /// [`vqs_core::prelude::ExactSummarizer::on_executor`]) ride the
    /// same long-lived workers as cross-query pre-processing instead of
    /// spawning scoped threads per search. Searches issued from inside a
    /// pool job degrade to inline execution automatically (see
    /// [`SolverPool::on_worker_thread`]), so the nesting is safe.
    pub fn summarizer_with_pool<F>(mut self, factory: F) -> ServiceBuilder
    where
        F: FnOnce(Arc<SolverPool>) -> Box<dyn Summarizer + Send + Sync> + 'static,
    {
        self.summarizer = Some(Box::new(move |pool| Arc::from(factory(pool))));
        self
    }

    /// Install a (typically still disarmed) fault-injection plan: the
    /// service draws from it at the named [`FaultSite`]s on the
    /// respond/refresh/register paths. Intended for chaos testing; a
    /// disarmed plan costs one atomic load per site check.
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> ServiceBuilder {
        self.faults = Some(plan);
        self
    }

    /// Spawn the pool and build the (initially tenant-less) service.
    pub fn build(self) -> VoiceService {
        let pool = Arc::new(SolverPool::new(self.workers));
        let summarizer = match self.summarizer {
            Some(factory) => factory(Arc::clone(&pool)),
            None => Arc::new(GreedySummarizer::with_optimized_pruning()),
        };
        VoiceService {
            pool,
            summarizer,
            faults: self.faults,
            tenants: RwLock::new(FxHashMap::default()),
        }
    }
}

/// The long-running voice-query service (Fig. 2 as a deployable object):
/// a registry of tenants behind one shared solver pool. All methods take
/// `&self`; the service is designed to be shared across request-serving
/// threads.
pub struct VoiceService {
    pool: Arc<SolverPool>,
    summarizer: Arc<dyn Summarizer + Send + Sync>,
    faults: Option<Arc<FaultPlan>>,
    tenants: RwLock<FxHashMap<String, Arc<Tenant>>>,
}

impl std::fmt::Debug for VoiceService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VoiceService")
            .field("pool", &self.pool)
            .field("summarizer", &self.summarizer.name())
            .field("tenants", &self.tenants())
            .finish()
    }
}

impl VoiceService {
    /// Start configuring a service.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::new()
    }

    /// Worker threads in the shared solver pool.
    pub fn pool_workers(&self) -> usize {
        self.pool.workers()
    }

    /// A handle to the shared solver pool — the executor behind every
    /// tenant's pre-processing, refreshes, and (for pool-backed
    /// summarizers) the inner search fan-out.
    pub fn solver_pool(&self) -> Arc<SolverPool> {
        Arc::clone(&self.pool)
    }

    fn tenant(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants.read().get(name).cloned()
    }

    /// Draw from the fault plan at a control-path site. A forced solver
    /// timeout surfaces as a typed [`EngineError::Internal`] — the same
    /// shape a genuine solver breakdown would take — which the serving
    /// front-end's background lane retries with backoff.
    fn impose_control(&self, site: FaultSite) -> Result<()> {
        if let Some(faults) = &self.faults {
            if faults.impose(site) {
                return Err(EngineError::Internal {
                    what: format!("injected solver timeout at {}", site.name()),
                });
            }
        }
        Ok(())
    }

    /// Register a dataset as a new tenant: enumerate its queries, solve
    /// them over the shared pool, and make the tenant answerable. The
    /// produced store is byte-identical to the legacy free-function
    /// pre-processing for the same dataset and configuration.
    ///
    /// Fails with [`EngineError::DuplicateTenant`] when the name is
    /// taken, and with the underlying error when the configuration or
    /// solving fails (in which case no tenant is registered).
    pub fn register_dataset(&self, spec: TenantSpec) -> Result<PreprocessReport> {
        self.impose_control(FaultSite::Register)?;
        spec.config.validate()?;
        if self.tenant(&spec.name).is_some() {
            return Err(EngineError::DuplicateTenant { name: spec.name });
        }
        let options = PreprocessOptions {
            workers: self.pool.workers(),
            templates: spec.templates.clone(),
        };
        let (store, report) = preprocess_with(
            &spec.dataset,
            &spec.config,
            self.summarizer.as_ref(),
            &options,
            Workers::Pool(&self.pool, ScatterPriority::Bulk),
        )?;
        let runtime = Tenant::build_runtime(
            &spec.dataset,
            &spec.config,
            &spec.synonyms,
            &spec.unavailable_markers,
            &spec.extremum,
        )?;
        let ingest = match &spec.ingest {
            Some(options) => Some(IngestState::new(
                options.clone(),
                &spec.dataset,
                &spec.config,
            )?),
            None => None,
        };
        let help_text = spec.help_text.unwrap_or_else(|| {
            format!(
                "Ask about {} by {}.",
                spec.config.targets.join(" or ").replace('_', " "),
                spec.config.dimensions.join(" or ").replace('_', " "),
            )
        });
        let tenant = Arc::new(Tenant {
            name: spec.name.clone(),
            config: spec.config,
            help_text,
            templates: spec.templates,
            synonyms: spec.synonyms,
            unavailable_markers: spec.unavailable_markers,
            extremum: spec.extremum,
            default_deadline: spec.default_deadline,
            store: Arc::new(store),
            refresh_lock: Mutex::new(()),
            runtime: Arc::new(RwLock::new(runtime)),
            rollup: Mutex::new(TenantRollup {
                preprocess: report.clone(),
                refreshes: 0,
                recomputed: 0,
                removed: 0,
                solver: report.instrumentation,
                solver_time: report.solver_time,
            }),
            counters: Arc::new(RequestCounters::default()),
            ingest,
        });
        let mut tenants = self.tenants.write();
        if tenants.contains_key(&spec.name) {
            return Err(EngineError::DuplicateTenant { name: spec.name });
        }
        tenants.insert(spec.name, tenant);
        Ok(report)
    }

    /// Bring a tenant up to date with `dataset` after the rows in
    /// `changed_rows` were mutated: recomputes only the affected
    /// speeches (untouched entries stay pointer-stable), replaces the
    /// tenant's dataset, and rebuilds its extractor dictionaries.
    /// Refreshes of the same tenant are serialized; lookups keep being
    /// served throughout.
    pub fn refresh_tenant(
        &self,
        name: &str,
        dataset: &GeneratedDataset,
        changed_rows: &[usize],
    ) -> Result<RefreshReport> {
        let tenant = self
            .tenant(name)
            .ok_or_else(|| EngineError::UnknownTenant {
                name: name.to_string(),
            })?;
        // On an ingest-enabled tenant the caller's dataset is
        // authoritative: the delta log is quiesced for the duration (the
        // log lock is always taken *before* the refresh lock) and reset
        // to the new table on success. Everything pending is considered
        // applied by the refresh.
        let mut log = tenant.ingest.as_ref().map(|state| state.inner.lock());
        // Holding the refresh lock for the whole run serializes
        // refreshes per tenant without blocking the respond path.
        let _refresh = tenant.refresh_lock.lock();
        // An injected fault here fails the refresh *before* any state is
        // touched, preserving fail-atomicity by construction.
        self.impose_control(FaultSite::Refresh)?;
        // Build the new runtime *before* touching the store: it is the
        // only other fallible step, so ordering it first keeps a failed
        // refresh fail-atomic (store, dataset, extractor, and counters
        // all stay on the old data together).
        let runtime = Tenant::build_runtime(
            dataset,
            &tenant.config,
            &tenant.synonyms,
            &tenant.unavailable_markers,
            &tenant.extremum,
        )?;
        let options = PreprocessOptions {
            workers: self.pool.workers(),
            templates: tenant.templates.clone(),
        };
        let report = refresh_with(
            dataset,
            &tenant.config,
            self.summarizer.as_ref(),
            &options,
            &tenant.store,
            changed_rows,
            Workers::Pool(&self.pool, ScatterPriority::Interactive),
        )?;
        *tenant.runtime.write() = runtime;
        if let (Some(state), Some(inner)) = (tenant.ingest.as_ref(), log.as_mut()) {
            inner.reset_from(dataset);
            state
                .counters
                .applied_seqno
                .store(inner.applied, Ordering::Relaxed);
        }
        let mut rollup = tenant.rollup.lock();
        rollup.refreshes += 1;
        rollup.recomputed += report.recomputed as u64;
        rollup.removed += report.removed as u64;
        rollup.solver.merge(&report.instrumentation);
        rollup.solver_time += report.solver_time;
        Ok(report)
    }

    /// Accept a batch of row deltas into a tenant's streaming-ingestion
    /// log (see [`crate::ingest`] for the dataflow). Every delta is
    /// seqno-stamped and applied to the tenant's materialized table
    /// immediately; the store is brought up to date by a debounced
    /// flush — inline in this call when the dirty-set bound or the
    /// coalescing window closes, otherwise by a later call or an
    /// explicit [`VoiceService::drain_ingest`]. Lookups keep serving the
    /// last-good speeches throughout; a validation error rejects the
    /// whole batch before any of it is applied.
    ///
    /// Fails with [`EngineError::IngestDisabled`] unless the tenant was
    /// registered with [`TenantSpec::ingest`].
    pub fn ingest(&self, name: &str, deltas: &[RowDelta]) -> Result<IngestReport> {
        self.ingest_with(name, deltas, false)
    }

    /// The delta-accepting variant of [`VoiceService::refresh_tenant`]:
    /// accept `deltas` and synchronously drain the whole log through the
    /// shared invalidation circuit, so the store reflects every accepted
    /// delta when this returns. Batch refresh and streaming ingestion
    /// share one invalidation code path; this entry point simply forces
    /// the flush instead of debouncing it.
    pub fn refresh_tenant_deltas(&self, name: &str, deltas: &[RowDelta]) -> Result<FlushReport> {
        let report = self.ingest_with(name, deltas, true)?;
        Ok(report.flush.expect("forced ingest always flushes"))
    }

    /// Force a full drain of a tenant's pending delta log, regardless of
    /// debounce windows and rate caps. After a successful drain the
    /// store snapshot is byte-identical to a cold pre-processing of the
    /// materialized table (the convergence contract), and
    /// [`TenantStats::ingest_lag`] is zero.
    pub fn drain_ingest(&self, name: &str) -> Result<FlushReport> {
        let report = self.ingest_with(name, &[], true)?;
        Ok(report.flush.expect("forced ingest always flushes"))
    }

    /// Shared implementation of the streaming entry points.
    fn ingest_with(&self, name: &str, deltas: &[RowDelta], force: bool) -> Result<IngestReport> {
        let tenant = self
            .tenant(name)
            .ok_or_else(|| EngineError::UnknownTenant {
                name: name.to_string(),
            })?;
        // An injected fault here fires *before* any delta is accepted,
        // so a failed (and possibly retried) submission never leaves the
        // log partially applied or double-applies a batch.
        self.impose_control(FaultSite::Ingest)?;
        let state = tenant
            .ingest
            .as_ref()
            .ok_or_else(|| EngineError::IngestDisabled {
                tenant: name.to_string(),
            })?;
        let mut inner = state.inner.lock();
        let (first_seqno, last_seqno) = if deltas.is_empty() {
            (0, 0)
        } else {
            inner.accept(deltas)?
        };
        state
            .counters
            .accepted_seqno
            .store(inner.accepted, Ordering::Relaxed);
        let flush = if force || state.auto_flush_due(&inner) {
            Some(self.flush_ingest(&tenant, state, &mut inner)?)
        } else {
            None
        };
        Ok(IngestReport {
            accepted: deltas.len(),
            first_seqno,
            last_seqno,
            flush,
        })
    }

    /// Drain the pending log into the store: re-solve exactly the dirty
    /// `(query-subset, target)` summaries on the pool's Bulk lane and
    /// swap them in atomically, entry by entry — untouched speeches stay
    /// `Arc`-pointer-stable and lookups are never blocked. The store is
    /// only mutated after every dirty query solved, so a failed flush
    /// keeps the log (and its dirty sets) intact for a later retry.
    fn flush_ingest(
        &self,
        tenant: &Tenant,
        state: &IngestState,
        inner: &mut IngestInner,
    ) -> Result<FlushReport> {
        if inner.pending == 0 {
            return Ok(FlushReport::empty());
        }
        let start = Instant::now();
        let dataset = inner.dataset()?;
        // Serialize against batch refreshes (log lock first, then the
        // refresh lock — the same order `refresh_tenant` takes them).
        let _refresh = tenant.refresh_lock.lock();
        // As in `refresh_tenant`: the runtime rebuild is the only other
        // fallible step, so it runs before the store is touched.
        let runtime = Tenant::build_runtime(
            &dataset,
            &tenant.config,
            &tenant.synonyms,
            &tenant.unavailable_markers,
            &tenant.extremum,
        )?;
        let options = PreprocessOptions {
            workers: self.pool.workers(),
            templates: tenant.templates.clone(),
        };
        let (all, by_target) = inner.dirty();
        let report = resummarize_with(
            &dataset,
            &tenant.config,
            self.summarizer.as_ref(),
            &options,
            &tenant.store,
            Invalidation::DirtyKeys { all, by_target },
            Workers::Pool(&self.pool, ScatterPriority::Bulk),
        )?;
        *tenant.runtime.write() = runtime;
        let deltas = inner.pending;
        inner.drained(report.recomputed, state.options.max_solves_per_sec);
        let invalidated = report.recomputed + report.removed;
        state
            .counters
            .deltas_applied
            .fetch_add(deltas, Ordering::Relaxed);
        state
            .counters
            .invalidated
            .fetch_add(invalidated as u64, Ordering::Relaxed);
        state
            .counters
            .resummarized
            .fetch_add(report.recomputed as u64, Ordering::Relaxed);
        state
            .counters
            .applied_seqno
            .store(inner.applied, Ordering::Relaxed);
        let mut rollup = tenant.rollup.lock();
        rollup.solver.merge(&report.instrumentation);
        rollup.solver_time += report.solver_time;
        Ok(FlushReport {
            deltas,
            invalidated,
            resummarized: report.recomputed,
            removed: report.removed,
            kept: report.kept,
            elapsed: start.elapsed(),
        })
    }

    /// One pass of a background flusher: drain every streaming tenant
    /// whose debounce window is open (pending deltas, `flush_interval`
    /// elapsed, rate cap satisfied). This is what lets a tenant that
    /// goes *silent* after a burst converge — without it, flushes only
    /// piggyback on the next `ingest` call, which may never come.
    ///
    /// Uses `try_lock` on each tenant's log so a tick never stalls
    /// behind an in-flight ingest (that ingest will flush inline
    /// anyway); a skipped tenant is simply retried on the next tick.
    /// Flush errors leave the log and dirty sets intact for retry and
    /// are reported in the per-tenant result list. Returns the number
    /// of tenants flushed.
    pub fn ingest_tick(&self) -> usize {
        let tenants: Vec<Arc<Tenant>> = self.tenants.read().values().cloned().collect();
        let mut flushed = 0;
        for tenant in tenants {
            let Some(state) = tenant.ingest.as_ref() else {
                continue;
            };
            let Some(mut inner) = state.inner.try_lock() else {
                continue;
            };
            if state.auto_flush_due(&inner) && self.flush_ingest(&tenant, state, &mut inner).is_ok()
            {
                flushed += 1;
            }
        }
        flushed
    }

    /// Shortest configured [`IngestBuilder::flush_interval`] across
    /// streaming-enabled tenants (`None` when no tenant streams). The
    /// front-end flusher derives its tick period from this so the
    /// 2×-interval convergence bound holds for every tenant.
    pub fn min_flush_interval(&self) -> Option<Duration> {
        self.tenants
            .read()
            .values()
            .filter_map(|tenant| {
                tenant
                    .ingest
                    .as_ref()
                    .map(|state| state.options.flush_interval)
            })
            .min()
    }

    /// Remove a tenant (its store dies with the last outstanding
    /// reference). Returns whether the tenant existed.
    pub fn evict_tenant(&self, name: &str) -> bool {
        self.tenants.write().remove(name).is_some()
    }

    /// Registered tenant names, sorted.
    pub fn tenants(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tenants.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Shared handle to a tenant's speech store (diagnostics and the
    /// byte-identity assertions in the integration suite).
    pub fn tenant_store(&self, name: &str) -> Option<Arc<SpeechStore>> {
        self.tenant(name).map(|tenant| Arc::clone(&tenant.store))
    }

    /// A clone of a tenant's current extractor (deployment-log replay
    /// and diagnostics).
    pub fn extractor(&self, name: &str) -> Option<Extractor> {
        self.tenant(name)
            .map(|tenant| tenant.runtime.read().extractor.clone())
    }

    /// Open a stateful conversation ([`VoiceSession`]) over one tenant:
    /// the session adds repeat handling on top of the same typed answer
    /// pipeline. It shares the tenant's *live* runtime, so extractor
    /// dictionaries refreshed via [`VoiceService::refresh_tenant`] take
    /// effect mid-conversation, and it holds its own store handle, so it
    /// keeps answering even after the tenant is evicted.
    pub fn session(&self, name: &str) -> Option<VoiceSession> {
        let tenant = self.tenant(name)?;
        let extractor = tenant.runtime.read().extractor.clone();
        tenant.counters.sessions.fetch_add(1, Ordering::Relaxed);
        Some(
            VoiceSession::new(
                Arc::clone(&tenant.store),
                extractor,
                tenant.help_text.clone(),
            )
            .with_tenant_label(&tenant.name)
            .with_shared_runtime(Arc::clone(&tenant.runtime))
            .with_counters(Arc::clone(&tenant.counters)),
        )
    }

    /// Answer one stateless request through the staged pipeline:
    /// classify the text with the tenant's extractor, then resolve
    /// through the three-tier chain — stored speech (or extension
    /// answer), live plan execution on the shared pool's bulk lane, or
    /// a typed apology — and account the latency. Per-user conversation
    /// state (repeat handling) lives in [`VoiceService::session`].
    pub fn respond(&self, request: &ServiceRequest) -> ServiceResponse {
        let start = Instant::now();
        match self.tenant(&request.tenant) {
            Some(tenant) => {
                let deadline = request
                    .deadline
                    .or_else(|| tenant.default_deadline.map(|budget| start + budget));
                self.respond_resolved(&tenant, request, start, deadline, Exec::Bulk(&self.pool))
            }
            None => Self::unknown_tenant_response(&request.tenant, start),
        }
    }

    /// The response for a request naming an unregistered tenant.
    pub(crate) fn unknown_tenant_response(tenant: &str, start: Instant) -> ServiceResponse {
        let answer = Answer::UnknownTenant {
            tenant: tenant.to_string(),
        };
        ServiceResponse {
            tenant: tenant.to_string(),
            request: None,
            speaking_secs: speaking_time_secs(answer.text()),
            follow_on: None,
            session: None,
            latency_micros: start.elapsed().as_micros() as u64,
            degradation: Degradation::None,
            answer,
        }
    }

    /// Resolve a tenant handle for the serving front-end's batch loop
    /// (one registry read per distinct tenant per batch instead of one
    /// per request). `None` when the tenant is not registered.
    pub(crate) fn resolve_tenant(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenant(name)
    }

    /// A tenant's default deadline budget (the serving front-end stamps
    /// it onto budget-less requests at admission).
    pub(crate) fn tenant_default_deadline(&self, name: &str) -> Option<Duration> {
        self.tenant(name).and_then(|tenant| tenant.default_deadline)
    }

    /// Roll one queue-expired request into its tenant's counters (the
    /// expiry happens in the front-end, before a tenant handle exists).
    pub(crate) fn record_expired(&self, name: &str) {
        if let Some(tenant) = self.tenant(name) {
            tenant.counters.record_expired();
        }
    }

    /// [`VoiceService::respond`] against an already-resolved tenant.
    pub(crate) fn respond_resolved(
        &self,
        tenant: &Tenant,
        request: &ServiceRequest,
        start: Instant,
        deadline: Option<Instant>,
        exec: Exec<'_>,
    ) -> ServiceResponse {
        self.respond_parts(
            tenant,
            request.tenant.clone(),
            &request.text,
            start,
            deadline,
            exec,
        )
    }

    /// [`VoiceService::respond_resolved`] taking the request by value:
    /// the tenant label is moved into the response instead of cloned
    /// (the front-end's hot path — the label's allocation then travels
    /// submitter → response and is freed where it was allocated).
    pub(crate) fn respond_owned(
        &self,
        tenant: &Tenant,
        request: ServiceRequest,
        start: Instant,
        deadline: Option<Instant>,
        exec: Exec<'_>,
    ) -> ServiceResponse {
        self.respond_parts(tenant, request.tenant, &request.text, start, deadline, exec)
    }

    /// Shared respond body; `label` becomes [`ServiceResponse::tenant`].
    fn respond_parts(
        &self,
        tenant: &Tenant,
        label: String,
        text: &str,
        start: Instant,
        deadline: Option<Instant>,
        exec: Exec<'_>,
    ) -> ServiceResponse {
        if let Some(faults) = &self.faults {
            // Latency/panic injection on the hot path; panics are
            // contained by the front-end's worker loop.
            faults.impose(FaultSite::Respond);
        }
        let runtime = tenant.runtime.read();
        let analysis = pipeline::analyze::analyze(&runtime.extractor, text);
        let solve = pipeline::LiveSolve {
            summarizer: self.summarizer.as_ref(),
            config: &tenant.config,
            templates: &tenant.templates,
            faults: self.faults.as_deref(),
        };
        let ctx = PipelineContext {
            store: &tenant.store,
            help_text: &tenant.help_text,
            extensions: runtime.extensions.as_ref(),
            live: runtime.live.as_ref(),
            exec,
            deadline,
            solve: Some(solve),
        };
        let (answer, follow_on, degradation) = pipeline::answer(&analysis, text, &ctx);
        drop(runtime);
        tenant.counters.record(&answer, degradation);
        ServiceResponse {
            tenant: label,
            request: Some(analysis.request),
            speaking_secs: speaking_time_secs(answer.text()),
            follow_on,
            session: None,
            latency_micros: start.elapsed().as_micros() as u64,
            degradation,
            answer,
        }
    }

    /// Replay a generated deployment log through one tenant's classifier
    /// and tabulate it into Table III counts (label order: Help, Repeat,
    /// S-Query, U-Query, Other).
    pub fn replay(&self, name: &str, log: &[LogEntry]) -> Option<[usize; 5]> {
        let extractor = self.extractor(name)?;
        Some(tabulate(&extractor, log))
    }

    /// Point-in-time statistics of every tenant, sorted by name.
    pub fn stats(&self) -> ServiceStats {
        let tenants: Vec<Arc<Tenant>> = self.tenants.read().values().cloned().collect();
        let mut stats: Vec<TenantStats> = tenants
            .into_iter()
            .map(|tenant| {
                let rollup = tenant.rollup.lock();
                TenantStats {
                    tenant: tenant.name.clone(),
                    speeches: tenant.store.len(),
                    queries: rollup.preprocess.queries,
                    requests: tenant.counters.requests.load(Ordering::Relaxed),
                    speech_answers: tenant.counters.speeches.load(Ordering::Relaxed),
                    extension_answers: tenant.counters.extensions.load(Ordering::Relaxed),
                    computed_answers: tenant.counters.computed.load(Ordering::Relaxed),
                    help_answers: tenant.counters.helps.load(Ordering::Relaxed),
                    unsupported_answers: tenant.counters.unsupported.load(Ordering::Relaxed),
                    miss_answers: tenant.counters.misses.load(Ordering::Relaxed),
                    expired_requests: tenant.counters.expired.load(Ordering::Relaxed),
                    degraded_answers: tenant.counters.degraded.load(Ordering::Relaxed),
                    sessions_opened: tenant.counters.sessions.load(Ordering::Relaxed),
                    refreshes: rollup.refreshes,
                    recomputed: rollup.recomputed,
                    removed: rollup.removed,
                    deltas_applied: tenant.ingest.as_ref().map_or(0, |state| {
                        state.counters.deltas_applied.load(Ordering::Relaxed)
                    }),
                    summaries_invalidated: tenant.ingest.as_ref().map_or(0, |state| {
                        state.counters.invalidated.load(Ordering::Relaxed)
                    }),
                    summaries_resummarized: tenant.ingest.as_ref().map_or(0, |state| {
                        state.counters.resummarized.load(Ordering::Relaxed)
                    }),
                    ingest_lag: tenant
                        .ingest
                        .as_ref()
                        .map_or(0, |state| state.counters.lag()),
                    store: tenant.store.stats(),
                    solver: rollup.solver,
                    solver_time: rollup.solver_time,
                }
            })
            .collect();
        stats.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        ServiceStats { tenants: stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqs_data::{DimSpec, SynthSpec, TargetSpec};

    fn dataset(seed: u64) -> GeneratedDataset {
        SynthSpec {
            name: "svc".to_string(),
            dims: vec![
                DimSpec::named("season", &["Winter", "Summer"]),
                DimSpec::named("region", &["East", "West"]),
            ],
            targets: vec![TargetSpec::new("delay", 15.0, 8.0, 2.0, (0.0, 60.0))],
            rows: 160,
        }
        .generate(seed, 1.0)
    }

    fn config() -> Configuration {
        Configuration::new("svc", &["season", "region"], &["delay"])
    }

    fn service() -> VoiceService {
        ServiceBuilder::new().workers(2).build()
    }

    #[test]
    fn register_respond_and_evict() {
        let service = service();
        let report = service
            .register_dataset(TenantSpec::new("svc", dataset(7), config()))
            .unwrap();
        assert_eq!(report.queries, report.speeches);
        assert!(report.total_solver_time() > Duration::ZERO);
        assert_eq!(service.tenants(), vec!["svc".to_string()]);

        let response = service.respond(&ServiceRequest::new("svc", "delay in Winter?"));
        assert_eq!(response.label(), "S-Query");
        match &response.answer {
            Answer::Speech {
                speech,
                kept_predicates,
            } => {
                assert_eq!(kept_predicates, &None);
                assert!(speech.text.contains("season Winter"), "{}", speech.text);
            }
            other => panic!("expected speech, got {other:?}"),
        }
        assert!(response.speaking_secs > 0.0);

        assert!(service.evict_tenant("svc"));
        assert!(!service.evict_tenant("svc"));
        assert!(service.tenants().is_empty());
        let gone = service.respond(&ServiceRequest::new("svc", "delay in Winter?"));
        assert!(matches!(gone.answer, Answer::UnknownTenant { .. }));
        assert_eq!(gone.text(), UNKNOWN_TENANT);
        assert_eq!(gone.label(), "Unknown");
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let service = service();
        service
            .register_dataset(TenantSpec::new("svc", dataset(7), config()))
            .unwrap();
        let err = service
            .register_dataset(TenantSpec::new("svc", dataset(8), config()))
            .unwrap_err();
        assert!(matches!(err, EngineError::DuplicateTenant { name } if name == "svc"));
    }

    #[test]
    fn refresh_of_unknown_tenant_errors() {
        let service = service();
        let err = service
            .refresh_tenant("nope", &dataset(7), &[])
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownTenant { name } if name == "nope"));
    }

    #[test]
    fn help_chatter_and_miss_map_to_typed_answers() {
        let service = service();
        service
            .register_dataset(
                TenantSpec::new("svc", dataset(7), config()).help_text("Try 'delay in Winter'."),
            )
            .unwrap();
        let help = service.respond(&ServiceRequest::new("svc", "help me"));
        assert_eq!(
            help.answer,
            Answer::Help {
                text: "Try 'delay in Winter'.".to_string()
            }
        );
        let chatter = service.respond(&ServiceRequest::new("svc", "sing me a song"));
        assert_eq!(chatter.text(), NOT_UNDERSTOOD);
        let repeat = service.respond(&ServiceRequest::new("svc", "repeat that"));
        assert_eq!(repeat.text(), NOTHING_TO_REPEAT);
        // With no extension index, the extremum question still
        // classifies as U-Query but the live tier answers it.
        let extremum = service.respond(&ServiceRequest::new(
            "svc",
            "which season has the most delay",
        ));
        assert_eq!(
            extremum.request,
            Some(Request::Unsupported(Unsupported::Extremum))
        );
        match &extremum.answer {
            Answer::Computed { plan, value, text } => {
                assert!(
                    matches!(
                        plan,
                        QueryPlan::GroupExtremum {
                            dimension,
                            highest: true,
                            ..
                        } if dimension == "season"
                    ),
                    "{plan:?}"
                );
                assert!(matches!(value, ComputedValue::GroupExtremum { .. }));
                assert!(text.contains("highest average delay"), "{text}");
            }
            other => panic!("expected a live computed answer, got {other:?}"),
        }

        let stats = service.stats();
        assert_eq!(stats.tenants.len(), 1);
        let tenant = &stats.tenants[0];
        assert_eq!(tenant.requests, 4);
        assert_eq!(tenant.help_answers, 3);
        assert_eq!(tenant.computed_answers, 1);
        assert_eq!(tenant.unsupported_answers, 0);
        assert_eq!(tenant.speech_answers, 0);
    }

    #[test]
    fn extremum_extension_answers_through_the_facade() {
        let service = service();
        service
            .register_dataset(
                TenantSpec::new("svc", dataset(7), config())
                    .target_synonyms("delay", &["delays"])
                    .extremum_index("delay", "delay"),
            )
            .unwrap();
        let response = service.respond(&ServiceRequest::new(
            "svc",
            "which season has the most delays",
        ));
        match &response.answer {
            Answer::Extension { text } => assert!(text.contains("highest"), "{text}"),
            other => panic!("expected extension answer, got {other:?}"),
        }
        assert_eq!(service.stats().tenants[0].extension_answers, 1);
    }

    #[test]
    fn generalization_fallback_reports_kept_predicates() {
        use crate::problem::Query;
        // A store covering only the overall and the Winter slice: a
        // (Winter, North) query must fall back to Winter with one
        // predicate kept, and the typed answer must say so.
        let store = SpeechStore::new();
        for predicates in [vec![], vec![("season", "Winter")]] {
            let query = Query::of("delay", &predicates);
            store.insert(StoredSpeech {
                text: format!("speech for {query}"),
                facts: vec![],
                utility: 1.0,
                base_error: 2.0,
                rows: 10,
                query,
            });
        }
        let ctx = PipelineContext {
            store: &store,
            help_text: "help",
            extensions: None,
            live: None,
            exec: Exec::Inline,
            deadline: None,
            solve: None,
        };
        let analysis = pipeline::Analysis {
            request: Request::Query(Query::of(
                "delay",
                &[("season", "Winter"), ("region", "North")],
            )),
            plan: None,
        };
        let (answer, _, degradation) = pipeline::answer(&analysis, "", &ctx);
        assert_eq!(degradation, Degradation::None);
        match answer {
            Answer::Speech {
                speech,
                kept_predicates,
            } => {
                assert_eq!(kept_predicates, Some(1));
                assert_eq!(speech.query, Query::of("delay", &[("season", "Winter")]));
            }
            other => panic!("expected generalized speech, got {other:?}"),
        }
        // Without a live table, an unknown target is a typed miss
        // carrying the query, distinct from the out-of-deployment
        // apology.
        let miss = pipeline::Analysis {
            request: Request::Query(Query::of("satisfaction", &[])),
            plan: None,
        };
        let (answer, follow_on, _) = pipeline::answer(&miss, "", &ctx);
        assert_eq!(
            answer,
            Answer::NoSummary {
                query: Query::of("satisfaction", &[]),
            }
        );
        assert_eq!(answer.text(), NO_SUMMARY);
        assert_eq!(follow_on, None);
    }

    #[test]
    fn store_hits_carry_follow_on_hints() {
        let service = service();
        service
            .register_dataset(TenantSpec::new("svc", dataset(7), config()))
            .unwrap();
        // The Winter slice extends to (Winter, East) and (Winter, West);
        // the hint picks the canonically first extension.
        let response = service.respond(&ServiceRequest::new("svc", "delay in Winter?"));
        assert!(response.answer.is_speech());
        let hint = response.follow_on.expect("adjacent summaries exist");
        assert_eq!(
            hint.query,
            crate::problem::Query::of("delay", &[("season", "Winter"), ("region", "East")])
        );
        assert_eq!(hint.utterance, "delay for region East and season Winter?");
        // A fully-predicated query has no one-step extension.
        let leaf = service.respond(&ServiceRequest::new("svc", "delay in Winter in the East?"));
        assert!(leaf.answer.is_speech());
        assert_eq!(leaf.follow_on, None);
        // Help answers never carry hints.
        assert_eq!(
            service
                .respond(&ServiceRequest::new("svc", "help"))
                .follow_on,
            None
        );
    }

    #[test]
    fn stats_aggregate_across_tenants() {
        let service = service();
        for name in ["a", "b"] {
            service
                .register_dataset(TenantSpec::new(name, dataset(7), config()))
                .unwrap();
        }
        service.respond(&ServiceRequest::new("a", "delay in Winter?"));
        service.respond(&ServiceRequest::new("a", "delay in Summer?"));
        service.respond(&ServiceRequest::new("b", "delay in Winter?"));
        let stats = service.stats();
        assert_eq!(stats.total_requests(), 3);
        assert_eq!(stats.tenants[0].tenant, "a");
        assert_eq!(stats.tenants[0].requests, 2);
        assert_eq!(stats.tenants[1].requests, 1);
        assert_eq!(stats.total_speeches(), 18);
        assert_eq!(stats.store_totals().lookups, 3);
        assert!(stats.solver_totals().gain_passes > 0);
    }

    #[test]
    fn streaming_ingest_drains_to_cold_preprocess() {
        use vqs_relalg::prelude::Value;
        let service = service();
        let base = dataset(7);
        service
            .register_dataset(
                TenantSpec::new("svc", base.clone(), config()).ingest(
                    IngestBuilder::new()
                        .max_dirty(1000)
                        .flush_interval(Duration::from_secs(3600)),
                ),
            )
            .unwrap();
        let moved = vec![Value::str("Summer"), Value::str("West"), Value::Float(5.25)];
        let deltas = vec![
            RowDelta::Insert(vec![
                Value::str("Winter"),
                Value::str("East"),
                Value::Float(33.0),
            ]),
            RowDelta::Update {
                row: 0,
                values: moved.clone(),
            },
            RowDelta::Delete { row: 3 },
        ];
        let report = service.ingest("svc", &deltas).unwrap();
        assert_eq!(report.accepted, 3);
        assert_eq!((report.first_seqno, report.last_seqno), (1, 3));
        assert!(report.flush.is_none(), "wide debounce window coalesces");
        assert_eq!(service.stats().tenants[0].ingest_lag, 3);

        let flush = service.drain_ingest("svc").unwrap();
        assert_eq!(flush.deltas, 3);
        assert!(flush.resummarized > 0);

        // Convergence: byte-identical to a cold pre-processing of the
        // final table.
        let mut rows: Vec<Vec<Value>> = base.table.iter_rows().collect();
        rows.push(vec![
            Value::str("Winter"),
            Value::str("East"),
            Value::Float(33.0),
        ]);
        rows[0] = moved;
        rows.remove(3);
        let final_dataset = GeneratedDataset {
            name: base.name.clone(),
            table: Table::from_rows(base.table.schema().clone(), rows).unwrap(),
            dims: base.dims.clone(),
            targets: base.targets.clone(),
        };
        let cold = ServiceBuilder::new().workers(2).build();
        cold.register_dataset(TenantSpec::new("svc", final_dataset, config()))
            .unwrap();
        assert_eq!(
            service.tenant_store("svc").unwrap().snapshot(),
            cold.tenant_store("svc").unwrap().snapshot()
        );

        let stats = service.stats();
        let tenant = &stats.tenants[0];
        assert_eq!(tenant.deltas_applied, 3);
        assert_eq!(tenant.ingest_lag, 0);
        assert!(tenant.summaries_resummarized > 0);
        assert!(tenant.summaries_invalidated >= tenant.summaries_resummarized);
    }

    #[test]
    fn ingest_requires_opt_in_and_valid_batches() {
        use vqs_relalg::prelude::Value;
        let service = service();
        service
            .register_dataset(TenantSpec::new("svc", dataset(7), config()))
            .unwrap();
        let err = service.ingest("svc", &[]).unwrap_err();
        assert!(matches!(err, EngineError::IngestDisabled { .. }));
        let err = service.ingest("missing", &[]).unwrap_err();
        assert!(matches!(err, EngineError::UnknownTenant { .. }));

        let streaming = ServiceBuilder::new().workers(2).build();
        streaming
            .register_dataset(
                TenantSpec::new("svc", dataset(7), config()).ingest(IngestBuilder::new()),
            )
            .unwrap();
        let err = streaming
            .ingest("svc", &[RowDelta::Delete { row: 10_000 }])
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidDelta { .. }));
        // The rejected batch left nothing behind.
        assert_eq!(streaming.stats().tenants[0].ingest_lag, 0);
        let _ = Value::Null;
    }

    #[test]
    fn refresh_tenant_deltas_matches_batch_refresh() {
        use vqs_relalg::prelude::Value;
        let streaming = service();
        streaming
            .register_dataset(
                TenantSpec::new("svc", dataset(7), config()).ingest(IngestBuilder::new()),
            )
            .unwrap();
        let flush = streaming
            .refresh_tenant_deltas(
                "svc",
                &[RowDelta::Update {
                    row: 2,
                    values: vec![Value::str("Winter"), Value::str("West"), Value::Float(48.0)],
                }],
            )
            .unwrap();
        assert_eq!(flush.deltas, 1);
        assert_eq!(streaming.stats().tenants[0].ingest_lag, 0);

        // The batch path over the same final table lands on the same
        // store.
        let base = dataset(7);
        let mut rows: Vec<Vec<Value>> = base.table.iter_rows().collect();
        rows[2] = vec![Value::str("Winter"), Value::str("West"), Value::Float(48.0)];
        let final_dataset = GeneratedDataset {
            name: base.name.clone(),
            table: Table::from_rows(base.table.schema().clone(), rows).unwrap(),
            dims: base.dims.clone(),
            targets: base.targets.clone(),
        };
        let batch = service();
        batch
            .register_dataset(TenantSpec::new("svc", base, config()))
            .unwrap();
        batch.refresh_tenant("svc", &final_dataset, &[2]).unwrap();
        assert_eq!(
            streaming.tenant_store("svc").unwrap().snapshot(),
            batch.tenant_store("svc").unwrap().snapshot()
        );
    }

    #[test]
    fn full_refresh_resets_the_ingest_log() {
        use vqs_relalg::prelude::Value;
        let service = service();
        service
            .register_dataset(
                TenantSpec::new("svc", dataset(7), config()).ingest(
                    IngestBuilder::new()
                        .max_dirty(1000)
                        .flush_interval(Duration::from_secs(3600)),
                ),
            )
            .unwrap();
        service
            .ingest(
                "svc",
                &[RowDelta::Insert(vec![
                    Value::str("Winter"),
                    Value::str("East"),
                    Value::Float(12.0),
                ])],
            )
            .unwrap();
        assert_eq!(service.stats().tenants[0].ingest_lag, 1);
        // A full refresh hands over authoritative data: the pending log
        // is considered applied by it.
        let replacement = dataset(8);
        service.refresh_tenant("svc", &replacement, &[]).unwrap();
        assert_eq!(service.stats().tenants[0].ingest_lag, 0);
        // Subsequent deltas build on the replacement table.
        let flush = service.drain_ingest("svc").unwrap();
        assert_eq!(flush.deltas, 0);
    }

    #[test]
    fn session_traffic_rolls_up_into_tenant_counters() {
        let service = service();
        service
            .register_dataset(TenantSpec::new("svc", dataset(7), config()))
            .unwrap();
        let mut session = service.session("svc").unwrap();
        let mut second = service.session("svc").unwrap();
        assert_ne!(session.id(), second.id(), "session ids are unique");

        let speech = session.answer("delay in Winter?");
        assert_eq!(speech.session, Some(session.id()));
        assert!(speech.answer.is_speech());
        session.answer("help");
        second.answer("delay in Summer?");
        // Stateless traffic and session traffic meet in one roll-up.
        service.respond(&ServiceRequest::new("svc", "delay in Winter?"));

        let stats = service.stats();
        let tenant = &stats.tenants[0];
        assert_eq!(tenant.sessions_opened, 2);
        assert_eq!(tenant.requests, 4);
        assert_eq!(tenant.speech_answers, 3);
        assert_eq!(tenant.help_answers, 1);
        // The stateless respond path stamps no session id.
        let direct = service.respond(&ServiceRequest::new("svc", "delay in Winter?"));
        assert_eq!(direct.session, None);
    }

    #[test]
    fn session_carries_repeat_state() {
        let service = service();
        service
            .register_dataset(TenantSpec::new("svc", dataset(7), config()))
            .unwrap();
        let mut session = service.session("svc").unwrap();
        assert!(session.answer("say that again").text().contains("not said"));
        let first = session.answer("delay in Winter?").text().to_string();
        assert_eq!(session.answer("repeat that").text(), first);
        assert!(service.session("missing").is_none());
    }

    #[test]
    fn open_sessions_follow_refreshed_dictionaries() {
        use crate::problem::Query;
        use vqs_relalg::prelude::{Table, Value};
        // Before-data where every row is Winter: "Summer" is not in the
        // extractor dictionary at registration time.
        let full = dataset(7);
        let schema = full.table.schema().clone();
        let season_col = schema.index_of("season").unwrap();
        let rows: Vec<Vec<Value>> = full
            .table
            .iter_rows()
            .map(|mut row| {
                row[season_col] = Value::Str("Winter".into());
                row
            })
            .collect();
        let winter_only = GeneratedDataset {
            name: full.name.clone(),
            table: Table::from_rows(schema, rows).unwrap(),
            dims: full.dims.clone(),
            targets: full.targets.clone(),
        };
        let service = service();
        service
            .register_dataset(TenantSpec::new("svc", winter_only, config()))
            .unwrap();
        let mut session = service.session("svc").unwrap();
        match &session.answer("delay in Summer").answer {
            Answer::Speech { speech, .. } => {
                assert!(speech.query.is_empty(), "unknown value → overall speech")
            }
            other => panic!("expected overall speech, got {other:?}"),
        }
        // After a refresh onto data containing Summer, the *same open
        // session* classifies the new value (live shared runtime).
        let changed: Vec<usize> = (0..full.table.len()).collect();
        service.refresh_tenant("svc", &full, &changed).unwrap();
        match &session.answer("delay in Summer").answer {
            Answer::Speech { speech, .. } => {
                assert_eq!(speech.query, Query::of("delay", &[("season", "Summer")]))
            }
            other => panic!("expected the Summer speech, got {other:?}"),
        }
    }

    /// A pool-backed exact summarizer (inner search fan-out routed
    /// through the service's own [`SolverPool`]) must register the
    /// byte-identical store a scoped single-worker exact run produces —
    /// including nested searches inside pool scatter jobs degrading to
    /// inline execution instead of deadlocking.
    #[test]
    fn pool_backed_exact_summarizer_matches_scoped_reference() {
        let mut cfg = config();
        cfg.solver_workers = 0; // resolve to the pool's worker count
        let service = ServiceBuilder::new()
            .workers(2)
            .summarizer_with_pool({
                let cfg = cfg.clone();
                move |pool| Box::new(crate::generator::configured_exact_on(&cfg, pool))
            })
            .build();
        service
            .register_dataset(TenantSpec::new("svc", dataset(7), cfg.clone()))
            .unwrap();
        let pooled = service.tenant_store("svc").unwrap();

        let mut serial_cfg = cfg;
        serial_cfg.solver_workers = 1;
        let (reference, _) = preprocess_with(
            &dataset(7),
            &serial_cfg,
            &crate::generator::configured_exact(&serial_cfg),
            &PreprocessOptions::default(),
            Workers::Pool(&service.solver_pool(), ScatterPriority::Bulk),
        )
        .unwrap();
        assert_eq!(pooled.snapshot(), reference.snapshot());
    }

    #[test]
    fn builder_defaults_are_sensible() {
        let service = ServiceBuilder::default().workers(1).build();
        assert_eq!(service.pool_workers(), 1);
        assert!(service.tenants().is_empty());
        assert!(format!("{service:?}").contains("VoiceService"));
        let stats = service.stats();
        assert_eq!(stats.total_requests(), 0);
        assert_eq!(stats.total_speeches(), 0);
    }
}
