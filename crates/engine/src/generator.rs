//! The Problem Generator and batch pre-processing stage (§III).
//!
//! "The Problem Generator creates one query for each combination of a
//! target column and a subset of equality predicates, considering all
//! possible combinations of equality predicates up to the query length.
//! For each such query, we generate a speech summarizing values in the
//! target column for the data subset defined by the query predicates."
//!
//! Pre-processing is embarrassingly parallel across queries. The batch
//! runner flattens every (target, query) pair into one job list and
//! fans workers out over a shared atomic work queue: each worker steals
//! the next unclaimed job index, so an expensive problem never leaves a
//! whole static chunk idle behind it. Results are re-ordered by job
//! index before they touch the store, which makes the output (and the
//! merged [`Instrumentation`] totals) independent of the worker count.
//!
//! `refresh_with` (driving [`crate::service::VoiceService::refresh_tenant`])
//! is the delta path for streaming updates: it recomputes
//! only the queries whose data subset changed, keeps every other stored
//! speech pointer-stable, and drops queries whose value combination
//! disappeared from the data.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use vqs_core::prelude::*;
use vqs_data::GeneratedDataset;
use vqs_relalg::hash::{FxHashMap, FxHashSet};
use vqs_relalg::prelude::Table;

use crate::config::Configuration;
use crate::error::{EngineError, Result};
use crate::problem::{NamedFact, Query, StoredSpeech};
use crate::service::{ScatterPriority, SolverPool};
use crate::store::SpeechStore;
use crate::template::SpeechTemplate;

/// How a batch of solver jobs is executed.
///
/// The [`crate::service::VoiceService`] facade reuses one long-lived
/// [`SolverPool`] across all tenants ([`Workers::Pool`]); the in-crate
/// test harness spawns a scoped thread pool per call
/// ([`Workers::Scoped`]). Both run the identical work-stealing loop, so
/// the produced stores are byte-identical regardless of executor.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Workers<'p> {
    /// Spawn `n` scoped threads for this call only (test harness;
    /// production paths share the service pool).
    #[cfg_attr(not(test), allow(dead_code))]
    Scoped(usize),
    /// Run on the shared long-lived pool, queued on the given lane
    /// (registrations ride [`ScatterPriority::Bulk`], delta refreshes
    /// the interactive fast lane — see [`SolverPool::scatter_at`]).
    Pool(&'p SolverPool, ScatterPriority),
}

impl Workers<'_> {
    fn available(&self) -> usize {
        match self {
            Workers::Scoped(n) => *n,
            Workers::Pool(pool, _) => pool.workers(),
        }
    }
}

/// One pre-processing work item: a query and the rows of its data subset.
#[derive(Debug, Clone)]
pub struct WorkItem {
    /// The query to answer.
    pub query: Query,
    /// Row indexes of the subset within the target's relation.
    pub rows: Vec<usize>,
}

/// Batch pre-processing options.
#[derive(Debug, Clone)]
pub struct PreprocessOptions {
    /// Worker threads (default: available parallelism).
    pub workers: usize,
    /// Per-target speech templates; targets without an entry use
    /// [`SpeechTemplate::plain`].
    pub templates: FxHashMap<String, SpeechTemplate>,
}

impl Default for PreprocessOptions {
    fn default() -> Self {
        PreprocessOptions {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            templates: FxHashMap::default(),
        }
    }
}

/// Aggregate report of one pre-processing run (feeds Fig. 10's
/// per-query pre-processing time).
#[derive(Debug, Clone, Default)]
pub struct PreprocessReport {
    /// Queries generated (= speeches attempted).
    pub queries: usize,
    /// Speeches stored.
    pub speeches: usize,
    /// Wall-clock time of the whole batch.
    pub elapsed: Duration,
    /// Summed wall-clock time spent inside the solver across all queries
    /// (CPU-side effort; exceeds `elapsed` when workers solve in
    /// parallel).
    pub solver_time: Duration,
    /// Summed work counters across all problems, merged in job order
    /// from the per-worker partials.
    pub instrumentation: Instrumentation,
}

impl PreprocessReport {
    /// Average pre-processing time per query.
    pub fn per_query(&self) -> Duration {
        if self.queries == 0 {
            Duration::ZERO
        } else {
            self.elapsed / self.queries as u32
        }
    }

    /// Total wall-clock time spent solving summarization problems, summed
    /// over all queries and workers.
    pub fn total_solver_time(&self) -> Duration {
        self.solver_time
    }
}

/// Aggregate report of one refresh run (see
/// [`crate::service::VoiceService::refresh_tenant`]).
#[derive(Debug, Clone, Default)]
pub struct RefreshReport {
    /// Queries enumerated over the new data (across all targets).
    pub queries: usize,
    /// Queries whose speech was recomputed.
    pub recomputed: usize,
    /// Queries whose stored speech was kept untouched.
    pub kept: usize,
    /// Stored queries removed because their value combination no longer
    /// occurs in the data.
    pub removed: usize,
    /// Wall-clock time of the whole refresh.
    pub elapsed: Duration,
    /// Summed wall-clock solver time of the recomputed problems.
    pub solver_time: Duration,
    /// Summed work counters of the recomputed problems only.
    pub instrumentation: Instrumentation,
}

/// Build the per-target relation with the paper's prior: "the average
/// value in the target column as a (constant) prior" — the *global*
/// average, kept constant across subsets.
pub fn target_relation(
    dataset: &GeneratedDataset,
    config: &Configuration,
    target: &str,
) -> Result<EncodedRelation> {
    table_relation(&dataset.table, config, target)
}

/// [`target_relation`] over a bare table (the respond path's live tier
/// holds a projected [`Table`], not the original dataset).
pub(crate) fn table_relation(
    table: &Table,
    config: &Configuration,
    target: &str,
) -> Result<EncodedRelation> {
    for dim in &config.dimensions {
        if table.schema().index_of(dim).is_err() {
            return Err(EngineError::MissingColumn {
                column: dim.clone(),
            });
        }
    }
    if table.schema().index_of(target).is_err() {
        return Err(EngineError::MissingColumn {
            column: target.to_string(),
        });
    }
    let dims: Vec<&str> = config.dimensions.iter().map(String::as_str).collect();
    let relation = EncodedRelation::from_table(table, &dims, target, Prior::Constant(0.0))?;
    let mean = relation.target_mean();
    Ok(relation.with_prior(Prior::Constant(mean))?)
}

/// Enumerate every query for one target: all predicate-dimension subsets
/// up to the configured length, with every value combination appearing in
/// the data (§III).
pub fn enumerate_queries(
    relation: &EncodedRelation,
    config: &Configuration,
    target: &str,
) -> Vec<WorkItem> {
    let dim_count = relation.dim_count();
    let mut items = Vec::new();
    // The admissible dimension subsets come from `vqs_core::delta`, the
    // same definitions the streaming invalidation circuit maps deltas
    // through — keeping "what exists" and "what a delta can dirty" in
    // exact agreement.
    for mask in subset_masks(dim_count, config.max_query_length) {
        let dims = mask_dims(mask);
        // Partition rows by value combination on `dims`.
        let mut combos: FxHashMap<Vec<u32>, Vec<usize>> = FxHashMap::default();
        for row in 0..relation.len() {
            let key: Vec<u32> = dims.iter().map(|&d| relation.code(d, row)).collect();
            combos.entry(key).or_default().push(row);
        }
        let mut sorted: Vec<(Vec<u32>, Vec<usize>)> = combos.into_iter().collect();
        sorted.sort(); // deterministic order
        for (combo, rows) in sorted {
            let predicates: Vec<(String, String)> = dims
                .iter()
                .zip(&combo)
                .map(|(&d, &code)| {
                    let dim = &relation.dims()[d];
                    (dim.name.clone(), dim.values[code as usize].to_string())
                })
                .collect();
            items.push(WorkItem {
                query: Query::new(target.to_string(), predicates),
                rows,
            });
        }
    }
    items
}

/// The paper's exact summarizer configured for this deployment: each
/// solver invocation fans its branch-and-bound search over
/// [`Configuration::solver_workers`] threads (default 1 — the
/// pre-processing pool already parallelizes across queries; raise it when
/// single huge instances dominate or when solving interactively). The
/// stored speeches are byte-identical for every worker count.
pub fn configured_exact(config: &Configuration) -> ExactSummarizer {
    ExactSummarizer {
        workers: config.solver_workers,
        ..ExactSummarizer::paper()
    }
}

/// [`configured_exact`] with its inner branch-and-bound fan-out routed
/// through `executor` (the service installs its shared [`SolverPool`]
/// here, so searches reuse the long-lived workers instead of spawning
/// scoped threads per search). Searches that are themselves running on a
/// pool worker — every pre-processing job — execute their batch inline,
/// so the nesting cannot deadlock and the cross-query parallelism stays
/// in charge. Stored speeches remain byte-identical to the scoped and
/// sequential paths.
pub fn configured_exact_on(
    config: &Configuration,
    executor: std::sync::Arc<dyn SearchExecutor>,
) -> ExactSummarizer {
    configured_exact(config).on_executor(executor)
}

/// Solve one work item into a stored speech.
pub fn solve_item<S: Summarizer + ?Sized>(
    relation: &EncodedRelation,
    config: &Configuration,
    summarizer: &S,
    template: &SpeechTemplate,
    item: &WorkItem,
) -> Result<(StoredSpeech, Instrumentation)> {
    let (speech, instrumentation, _) =
        solve_item_at(relation, config, summarizer, template, item, None)?;
    Ok((speech, instrumentation))
}

/// [`solve_item`] under an external wall-clock deadline (the serving
/// path's live-solve tier). The third return value reports whether the
/// solve timed out — the speech is then the summarizer's best-so-far
/// (anytime algorithms) with no optimality guarantee.
pub(crate) fn solve_item_at<S: Summarizer + ?Sized>(
    relation: &EncodedRelation,
    config: &Configuration,
    summarizer: &S,
    template: &SpeechTemplate,
    item: &WorkItem,
    deadline: Option<Instant>,
) -> Result<(StoredSpeech, Instrumentation, bool)> {
    let subset = relation.subset(&item.rows)?;
    // Dimensions not fixed by the query remain free for fact scopes.
    let fixed: Vec<&String> = item.query.predicates().iter().map(|(d, _)| d).collect();
    let free_dims: Vec<usize> = (0..subset.dim_count())
        .filter(|&d| !fixed.iter().any(|f| **f == subset.dims()[d].name))
        .collect();
    let min_dims = usize::from(!config.include_overall_fact && !free_dims.is_empty());
    let max_dims = config.max_fact_dimensions.min(free_dims.len());
    let catalog = FactCatalog::build_with_scope_sizes(&subset, &free_dims, min_dims, max_dims)?;
    let problem = Problem::new(&subset, &catalog, config.speech_length)?;
    let summary = summarizer.summarize_by(&problem, deadline)?;

    let facts: Vec<NamedFact> = summary
        .speech
        .facts()
        .iter()
        .map(|fact| NamedFact {
            scope: fact
                .scope
                .pairs()
                .into_iter()
                .map(|(d, code)| {
                    let dim = &subset.dims()[d];
                    (dim.name.clone(), dim.values[code as usize].to_string())
                })
                .collect(),
            value: fact.value,
            support: fact.support,
        })
        .collect();
    let text = template.render(&item.query, &facts);
    Ok((
        StoredSpeech {
            query: item.query.clone(),
            facts,
            text,
            utility: summary.utility,
            base_error: summary.base_error,
            rows: item.rows.len(),
        },
        summary.instrumentation,
        summary.timed_out,
    ))
}

/// Solve one query live against a tenant's retained table, under the
/// request's remaining deadline — the respond path's degradation ladder.
///
/// Returns `Ok(None)` when the query cannot be solved live (a predicate
/// names an unknown dimension or value, or the subset is empty); the
/// caller then falls through to the pre-existing answer tiers. When the
/// configured summarizer times out against `deadline` (or
/// `force_timeout` simulates that, for fault injection), the solve
/// degrades to one poly-time greedy pass over the same problem and the
/// returned flag reports the degradation.
pub(crate) fn solve_live(
    table: &Table,
    config: &Configuration,
    summarizer: &dyn Summarizer,
    templates: &FxHashMap<String, SpeechTemplate>,
    query: &Query,
    deadline: Option<Instant>,
    force_timeout: bool,
) -> Result<Option<(StoredSpeech, bool)>> {
    let relation = table_relation(table, config, query.target())?;
    let mut predicates = Vec::with_capacity(query.predicates().len());
    for (dim, value) in query.predicates() {
        match relation.dim_index(dim) {
            Some(d) => predicates.push((d, value.as_str())),
            None => return Ok(None),
        }
    }
    let rows: Vec<usize> = (0..relation.len())
        .filter(|&row| {
            predicates
                .iter()
                .all(|&(d, value)| relation.value_str(d, row) == value)
        })
        .collect();
    if rows.is_empty() {
        return Ok(None);
    }
    let item = WorkItem {
        query: query.clone(),
        rows,
    };
    let template = templates
        .get(query.target())
        .cloned()
        .unwrap_or_else(|| SpeechTemplate::plain(query.target()));
    if !force_timeout {
        let (speech, _, timed_out) =
            solve_item_at(&relation, config, summarizer, &template, &item, deadline)?;
        if !timed_out {
            return Ok(Some((speech, false)));
        }
    }
    // The budgeted solve expired (or was forced to): one greedy pass
    // still yields a valid — merely non-optimal — speech.
    let greedy = GreedySummarizer::with_optimized_pruning();
    let (speech, _, _) = solve_item_at(&relation, config, &greedy, &template, &item, None)?;
    Ok(Some((speech, true)))
}

/// The fully-prepared pre-processing input for one target.
struct TargetPlan {
    target: String,
    relation: EncodedRelation,
    template: SpeechTemplate,
    items: Vec<WorkItem>,
    /// Global target average, the §III constant prior.
    prior: f64,
}

/// Validate columns and enumerate the work for every configured target.
fn build_plans(
    dataset: &GeneratedDataset,
    config: &Configuration,
    options: &PreprocessOptions,
) -> Result<Vec<TargetPlan>> {
    config
        .targets
        .iter()
        .map(|target| {
            let relation = target_relation(dataset, config, target)?;
            let items = enumerate_queries(&relation, config, target);
            let template = options
                .templates
                .get(target)
                .cloned()
                .unwrap_or_else(|| SpeechTemplate::plain(target));
            let prior = relation.target_mean();
            Ok(TargetPlan {
                target: target.clone(),
                relation,
                template,
                items,
                prior,
            })
        })
        .collect()
}

/// Run the given `(plan, item)` jobs over a work-stealing worker pool.
///
/// Workers claim job indexes from a shared atomic counter, so load
/// balances across targets and across skewed per-query costs without
/// static chunking. Each worker accumulates results locally; the merged
/// output is sorted back into job order, making it — and therefore the
/// store contents and instrumentation totals — deterministic in the
/// worker count. On failure the error of the smallest reported job index
/// wins and the remaining workers stop early.
fn run_jobs<S: Summarizer + Sync + ?Sized>(
    plans: &[TargetPlan],
    jobs: &[(usize, usize)],
    config: &Configuration,
    summarizer: &S,
    workers: Workers<'_>,
) -> Result<(Vec<(StoredSpeech, Instrumentation)>, Duration)> {
    if jobs.is_empty() {
        return Ok((Vec::new(), Duration::ZERO));
    }
    let worker_count = workers.available().max(1).min(jobs.len());
    let next = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    type WorkerOutput = (
        Vec<(usize, (StoredSpeech, Instrumentation))>,
        Option<(usize, EngineError)>,
        Duration,
    );
    let worker_body = |_worker: usize| -> WorkerOutput {
        let mut solved = Vec::new();
        let mut failure: Option<(usize, EngineError)> = None;
        let mut solver_time = Duration::ZERO;
        while !cancelled.load(Ordering::Relaxed) {
            let job = next.fetch_add(1, Ordering::Relaxed);
            if job >= jobs.len() {
                break;
            }
            let (plan_index, item_index) = jobs[job];
            let plan = &plans[plan_index];
            let solve_start = Instant::now();
            let outcome = solve_item(
                &plan.relation,
                config,
                summarizer,
                &plan.template,
                &plan.items[item_index],
            );
            solver_time += solve_start.elapsed();
            match outcome {
                Ok(result) => solved.push((job, result)),
                Err(error) => {
                    failure = Some((job, error));
                    cancelled.store(true, Ordering::Relaxed);
                    break;
                }
            }
        }
        (solved, failure, solver_time)
    };
    let per_worker: Vec<WorkerOutput> = match workers {
        Workers::Pool(pool, priority) => pool.scatter_at(priority, worker_count, worker_body),
        Workers::Scoped(_) => std::thread::scope(|scope| {
            let handles: Vec<_> = (0..worker_count)
                .map(|worker| {
                    let worker_body = &worker_body;
                    scope.spawn(move || worker_body(worker))
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("pre-processing worker panicked"))
                .collect()
        }),
    };

    let mut solved = Vec::with_capacity(jobs.len());
    let mut first_failure: Option<(usize, EngineError)> = None;
    let mut solver_time = Duration::ZERO;
    for (worker_solved, failure, worker_time) in per_worker {
        solved.extend(worker_solved);
        solver_time += worker_time;
        if let Some((index, error)) = failure {
            if first_failure.as_ref().is_none_or(|(best, _)| index < *best) {
                first_failure = Some((index, error));
            }
        }
    }
    if let Some((_, error)) = first_failure {
        return Err(error);
    }
    solved.sort_by_key(|(index, _)| *index);
    Ok((
        solved.into_iter().map(|(_, result)| result).collect(),
        solver_time,
    ))
}

/// Pre-processing over an explicit executor; the shared implementation
/// behind the service facade (and the integration suite's scoped-pool
/// harness).
pub(crate) fn preprocess_with<S: Summarizer + Sync + ?Sized>(
    dataset: &GeneratedDataset,
    config: &Configuration,
    summarizer: &S,
    options: &PreprocessOptions,
    workers: Workers<'_>,
) -> Result<(SpeechStore, PreprocessReport)> {
    config.validate()?;
    let start = Instant::now();
    let plans = build_plans(dataset, config, options)?;
    let jobs: Vec<(usize, usize)> = plans
        .iter()
        .enumerate()
        .flat_map(|(plan_index, plan)| (0..plan.items.len()).map(move |i| (plan_index, i)))
        .collect();
    let total_queries = jobs.len();
    let (solved, solver_time) = run_jobs(&plans, &jobs, config, summarizer, workers)?;

    let store = SpeechStore::new();
    let mut instrumentation = Instrumentation::default();
    for (speech, counters) in solved {
        instrumentation.merge(&counters);
        store.insert(speech);
    }
    for plan in &plans {
        store.set_target_prior(&plan.target, plan.prior);
    }

    let speeches = store.len();
    Ok((
        store,
        PreprocessReport {
            queries: total_queries,
            speeches,
            elapsed: start.elapsed(),
            solver_time,
            instrumentation,
        },
    ))
}

/// Delta re-summarization: bring `store` up to date with `dataset` after
/// the rows in `changed_rows` were mutated, recomputing only the queries
/// whose data subset actually changed.
///
/// A query is recomputed when any of these hold:
/// - its (new) subset contains a changed row — covers changed target
///   values and rows that moved *into* the subset;
/// - its stored row count differs from the new subset size — covers rows
///   that moved *out of* the subset;
/// - it has no stored speech yet — covers value combinations newly
///   appearing in the data (or targets invalidated via
///   [`SpeechStore::invalidate_target`]);
/// - the target's global average (the §III constant prior) drifted, which
///   invalidates every speech of that target.
///
/// Stored queries whose value combination vanished are removed. All other
/// entries are left untouched — the same [`std::sync::Arc`] keeps serving
/// — so after a refresh the store is element-wise identical to a full
/// pre-processing pass over the new data.
/// Delta re-summarization over an explicit executor; the shared
/// implementation behind
/// [`crate::service::VoiceService::refresh_tenant`]. A thin wrapper over
/// [`resummarize_with`] selecting queries by changed row membership.
#[allow(clippy::too_many_arguments)]
pub(crate) fn refresh_with<S: Summarizer + Sync + ?Sized>(
    dataset: &GeneratedDataset,
    config: &Configuration,
    summarizer: &S,
    options: &PreprocessOptions,
    store: &SpeechStore,
    changed_rows: &[usize],
    workers: Workers<'_>,
) -> Result<RefreshReport> {
    resummarize_with(
        dataset,
        config,
        summarizer,
        options,
        store,
        Invalidation::ChangedRows(changed_rows),
        workers,
    )
}

/// A normalized (sorted) predicate list identifying one value
/// combination, exactly as [`Query::predicates`] stores them.
pub(crate) type DirtyKey = Vec<(String, String)>;

/// How a re-summarization pass decides which live queries are dirty.
///
/// Both the batch refresh path and the streaming ingest circuit funnel
/// through [`resummarize_with`] with one of these selectors, so the two
/// paths cannot diverge on invalidation semantics.
pub(crate) enum Invalidation<'a> {
    /// Row indexes (into the *new* data) that were mutated — the batch
    /// `refresh` contract: any query whose subset contains a changed row
    /// is recomputed.
    ChangedRows(&'a [usize]),
    /// Exact dirty predicate-combination keys produced by the streaming
    /// invalidation circuit. Keys are normalized (sorted) predicate
    /// lists, exactly as [`Query::predicates`] stores them: `all`
    /// applies to every target (dimension-membership changes), the
    /// per-target sets only to queries of that target (target-value
    /// changes that left the global mean bit-identical).
    DirtyKeys {
        /// Combinations dirtied for every target.
        all: &'a FxHashSet<DirtyKey>,
        /// Combinations dirtied for a single target only.
        by_target: &'a FxHashMap<String, FxHashSet<DirtyKey>>,
    },
}

/// The shared re-summarization core: bring `store` up to date with
/// `dataset`, recomputing only the queries `invalidation` marks dirty
/// (plus the safety-net cases below), removing stored queries whose
/// value combination vanished, and leaving every other entry
/// `Arc`-pointer-stable. The store is only mutated after *every* dirty
/// query solved, so a failed pass leaves it untouched.
#[allow(clippy::too_many_arguments)]
pub(crate) fn resummarize_with<S: Summarizer + Sync + ?Sized>(
    dataset: &GeneratedDataset,
    config: &Configuration,
    summarizer: &S,
    options: &PreprocessOptions,
    store: &SpeechStore,
    invalidation: Invalidation<'_>,
    workers: Workers<'_>,
) -> Result<RefreshReport> {
    config.validate()?;
    let start = Instant::now();
    let plans = build_plans(dataset, config, options)?;

    let mut queries = 0usize;
    let mut kept = 0usize;
    let mut jobs: Vec<(usize, usize)> = Vec::new();
    let mut stale: Vec<Query> = Vec::new();
    for (plan_index, plan) in plans.iter().enumerate() {
        queries += plan.items.len();
        let changed: Option<Vec<bool>> = match &invalidation {
            Invalidation::ChangedRows(rows) => {
                let mut flags = vec![false; plan.relation.len()];
                for &row in rows.iter() {
                    if row < flags.len() {
                        flags[row] = true;
                    }
                }
                Some(flags)
            }
            Invalidation::DirtyKeys { .. } => None,
        };
        // The prior is recomputed deterministically from the data, so an
        // unchanged target column reproduces it bit-for-bit; any other
        // value means every kept speech of this target would embed a
        // stale prior.
        let prior_drifted = match store.target_prior(&plan.target) {
            Some(old) => old.to_bits() != plan.prior.to_bits(),
            None => true,
        };
        // Note stored queries whose value combination no longer occurs;
        // actual removal is deferred until solving has succeeded so a
        // failed refresh never leaves a live store partially mutated.
        let live: FxHashSet<&Query> = plan.items.iter().map(|item| &item.query).collect();
        for speech in store.speeches_for_target(&plan.target) {
            if !live.contains(&speech.query) {
                stale.push(speech.query.clone());
            }
        }
        for (item_index, item) in plan.items.iter().enumerate() {
            let data_dirty = match &invalidation {
                Invalidation::ChangedRows(_) => {
                    let flags = changed.as_ref().expect("flags built for ChangedRows");
                    item.rows.iter().any(|&row| flags[row])
                }
                Invalidation::DirtyKeys { all, by_target } => {
                    let key: &[(String, String)] = item.query.predicates();
                    all.contains(key)
                        || by_target
                            .get(&plan.target)
                            .is_some_and(|set| set.contains(key))
                }
            };
            // The stored-speech checks are a safety net shared by both
            // selectors: a missing entry covers combinations newly
            // appearing in the data (or targets invalidated wholesale),
            // a row-count mismatch covers rows that moved out of the
            // subset.
            let affected = prior_drifted
                || data_dirty
                || store
                    .get(&item.query)
                    .is_none_or(|existing| existing.rows != item.rows.len());
            if affected {
                jobs.push((plan_index, item_index));
            } else {
                kept += 1;
            }
        }
    }

    let (solved, solver_time) = run_jobs(&plans, &jobs, config, summarizer, workers)?;
    // Everything solved: from here on the store mutates without fallible
    // steps in between.
    let removed = stale.len();
    for query in &stale {
        store.remove(query);
    }
    let recomputed = solved.len();
    let mut instrumentation = Instrumentation::default();
    for (speech, counters) in solved {
        instrumentation.merge(&counters);
        store.insert(speech);
    }
    for plan in &plans {
        store.set_target_prior(&plan.target, plan.prior);
    }

    Ok(RefreshReport {
        queries,
        recomputed,
        kept,
        removed,
        elapsed: start.elapsed(),
        solver_time,
        instrumentation,
    })
}

// These tests drive `preprocess_with`/`refresh_with` over scoped pools;
// the facade path is covered by `service::tests` and the
// `vqs-integration` service suite.
#[cfg(test)]
mod tests {
    use super::*;
    use vqs_data::{DimSpec, SynthSpec, TargetSpec};

    /// [`preprocess_with`] over a scoped pool sized from `options`.
    fn preprocess<S: Summarizer + Sync + ?Sized>(
        dataset: &GeneratedDataset,
        config: &Configuration,
        summarizer: &S,
        options: &PreprocessOptions,
    ) -> Result<(SpeechStore, PreprocessReport)> {
        preprocess_with(
            dataset,
            config,
            summarizer,
            options,
            Workers::Scoped(options.workers),
        )
    }

    /// [`refresh_with`] over a scoped pool sized from `options`.
    fn refresh<S: Summarizer + Sync + ?Sized>(
        dataset: &GeneratedDataset,
        config: &Configuration,
        summarizer: &S,
        options: &PreprocessOptions,
        store: &SpeechStore,
        changed_rows: &[usize],
    ) -> Result<RefreshReport> {
        refresh_with(
            dataset,
            config,
            summarizer,
            options,
            store,
            changed_rows,
            Workers::Scoped(options.workers),
        )
    }

    fn tiny_dataset() -> GeneratedDataset {
        SynthSpec {
            name: "tiny".to_string(),
            dims: vec![
                DimSpec::named("season", &["Winter", "Summer"]),
                DimSpec::named("region", &["East", "West", "North"]),
            ],
            targets: vec![
                TargetSpec::new("delay", 15.0, 8.0, 2.0, (0.0, 60.0)),
                TargetSpec::new("cancelled", 30.0, 10.0, 4.0, (0.0, 1000.0)),
            ],
            rows: 300,
        }
        .generate(11, 1.0)
    }

    fn config() -> Configuration {
        Configuration::new("tiny", &["season", "region"], &["delay", "cancelled"])
    }

    #[test]
    fn enumerates_all_present_combinations() {
        let data = tiny_dataset();
        let relation = target_relation(&data, &config(), "delay").unwrap();
        let items = enumerate_queries(&relation, &config(), "delay");
        // 1 empty + 2 seasons + 3 regions + 6 pairs = 12 (all combos occur
        // in 300 rows with overwhelming probability).
        assert_eq!(items.len(), 12);
        // Every subset is consistent with its predicates.
        for item in &items {
            assert!(!item.rows.is_empty());
            for (d, v) in item.query.predicates() {
                let dim = relation.dim_index(d).unwrap();
                for &row in &item.rows {
                    assert_eq!(relation.value_str(dim, row), v.as_str());
                }
            }
        }
        // Subsets of the same dimension set partition the rows.
        let season_rows: usize = items
            .iter()
            .filter(|i| i.query.len() == 1 && i.query.predicates()[0].0 == "season")
            .map(|i| i.rows.len())
            .sum();
        assert_eq!(season_rows, relation.len());
    }

    #[test]
    fn query_length_limit_respected() {
        let data = tiny_dataset();
        let mut cfg = config();
        cfg.max_query_length = 1;
        let relation = target_relation(&data, &cfg, "delay").unwrap();
        let items = enumerate_queries(&relation, &cfg, "delay");
        assert!(items.iter().all(|i| i.query.len() <= 1));
        assert_eq!(items.len(), 6);
    }

    #[test]
    fn preprocess_fills_store() {
        let data = tiny_dataset();
        let cfg = config();
        let summarizer = GreedySummarizer::with_optimized_pruning();
        let (store, report) =
            preprocess(&data, &cfg, &summarizer, &PreprocessOptions::default()).unwrap();
        // Two targets × 12 queries.
        assert_eq!(report.queries, 24);
        assert_eq!(report.speeches, 24);
        assert_eq!(store.len(), 24);
        assert!(report.per_query() > Duration::ZERO);
        // Solver effort is accounted per item, so it is positive and at
        // least roughly commensurate with the wall clock of a serial run.
        assert!(report.total_solver_time() > Duration::ZERO);
        // Every stored speech has at most speech_length facts and text.
        for query in store.queries() {
            let speech = store.get(&query).unwrap();
            assert!(speech.facts.len() <= cfg.speech_length);
            assert!(!speech.text.is_empty());
            assert!(speech.utility >= -1e-9);
        }
        // The constant prior is recorded per target for later refreshes.
        let relation = target_relation(&data, &cfg, "delay").unwrap();
        assert_eq!(store.target_prior("delay"), Some(relation.target_mean()));
    }

    #[test]
    fn single_worker_matches_parallel() {
        let data = tiny_dataset();
        let cfg = config();
        let summarizer = GreedySummarizer::base();
        let serial = PreprocessOptions {
            workers: 1,
            ..Default::default()
        };
        let parallel = PreprocessOptions {
            workers: 8,
            ..Default::default()
        };
        let (s1, r1) = preprocess(&data, &cfg, &summarizer, &serial).unwrap();
        let (s2, r2) = preprocess(&data, &cfg, &summarizer, &parallel).unwrap();
        assert_eq!(s1.len(), s2.len());
        assert_eq!(s1.snapshot(), s2.snapshot());
        assert_eq!(r1.instrumentation, r2.instrumentation);
        for query in s1.queries() {
            let a = s1.get(&query).unwrap();
            let b = s2.get(&query).unwrap();
            assert!((a.utility - b.utility).abs() < 1e-9, "{query}");
        }
    }

    #[test]
    fn configured_exact_store_is_identical_for_any_solver_worker_count() {
        let data = tiny_dataset();
        let mut cfg = config();
        let options = PreprocessOptions {
            workers: 2,
            ..Default::default()
        };
        cfg.solver_workers = 1;
        let (serial, _) = preprocess(&data, &cfg, &configured_exact(&cfg), &options).unwrap();
        cfg.solver_workers = 8;
        let solver = configured_exact(&cfg);
        assert_eq!(solver.workers, 8);
        let (parallel, _) = preprocess(&data, &cfg, &solver, &options).unwrap();
        assert_eq!(serial.snapshot(), parallel.snapshot());
        // Exact speeches are at least as good as greedy's.
        let (greedy, _) = preprocess(
            &data,
            &cfg,
            &GreedySummarizer::base(),
            &PreprocessOptions::default(),
        )
        .unwrap();
        for query in greedy.queries() {
            let g = greedy.get(&query).unwrap();
            let e = parallel.get(&query).unwrap();
            assert!(e.utility >= g.utility - 1e-9, "{query}");
        }
    }

    #[test]
    fn missing_columns_reported() {
        let data = tiny_dataset();
        let bad = Configuration::new("tiny", &["season", "nonexistent"], &["delay"]);
        let err = preprocess(
            &data,
            &bad,
            &GreedySummarizer::base(),
            &PreprocessOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::MissingColumn { .. }));
    }

    #[test]
    fn full_length_queries_get_overall_fact_only_when_no_free_dims() {
        let data = tiny_dataset();
        let mut cfg = config();
        cfg.max_query_length = 2; // queries can fix both dimensions
        cfg.include_overall_fact = false;
        let (store, _) = preprocess(
            &data,
            &cfg,
            &GreedySummarizer::base(),
            &PreprocessOptions {
                workers: 2,
                ..Default::default()
            },
        )
        .unwrap();
        // A query fixing both dims has no free dimensions; its only
        // candidate fact is the subset average.
        let q = store
            .queries()
            .into_iter()
            .find(|q| q.len() == 2 && q.target() == "delay")
            .unwrap();
        let speech = store.get(&q).unwrap();
        assert_eq!(speech.facts.len(), 1);
        assert!(speech.facts[0].scope.is_empty());
    }

    #[test]
    fn refresh_with_no_changes_keeps_every_entry() {
        let data = tiny_dataset();
        let cfg = config();
        let summarizer = GreedySummarizer::with_optimized_pruning();
        let options = PreprocessOptions::default();
        let (store, _) = preprocess(&data, &cfg, &summarizer, &options).unwrap();
        let before = store.snapshot();
        let report = refresh(&data, &cfg, &summarizer, &options, &store, &[]).unwrap();
        assert_eq!(report.recomputed, 0);
        assert_eq!(report.kept, report.queries);
        assert_eq!(report.removed, 0);
        let after = store.snapshot();
        assert_eq!(before, after);
        // Untouched entries are pointer-stable, not just value-stable.
        for (a, b) in before.iter().zip(&after) {
            assert!(std::sync::Arc::ptr_eq(a, b), "{}", a.query);
        }
    }

    #[test]
    fn refresh_recomputes_invalidated_target_only() {
        let data = tiny_dataset();
        let cfg = config();
        let summarizer = GreedySummarizer::with_optimized_pruning();
        let options = PreprocessOptions::default();
        let (store, _) = preprocess(&data, &cfg, &summarizer, &options).unwrap();
        let cancelled_before = store.snapshot();
        assert_eq!(store.invalidate_target("delay"), 12);
        let report = refresh(&data, &cfg, &summarizer, &options, &store, &[]).unwrap();
        assert_eq!(report.recomputed, 12);
        assert_eq!(report.kept, 12);
        assert_eq!(store.len(), 24);
        // The untouched target kept its exact Arcs.
        for speech in cancelled_before
            .iter()
            .filter(|s| s.query.target() == "cancelled")
        {
            let now = store.get(&speech.query).unwrap();
            assert!(std::sync::Arc::ptr_eq(speech, &now), "{}", speech.query);
        }
    }

    /// Fails on every query whose subset contains a marked row, letting
    /// tests inject solver errors mid-batch.
    struct FailingSummarizer {
        fail_on_row: usize,
    }

    impl Summarizer for FailingSummarizer {
        fn name(&self) -> &'static str {
            "FAIL"
        }

        fn summarize(&self, problem: &Problem<'_>) -> vqs_core::error::Result<Summary> {
            let _ = problem;
            Err(vqs_core::error::CoreError::InvalidProblem {
                detail: format!("injected failure (row {})", self.fail_on_row),
            })
        }
    }

    #[test]
    fn failed_refresh_leaves_store_untouched() {
        let data = tiny_dataset();
        let cfg = config();
        let summarizer = GreedySummarizer::with_optimized_pruning();
        let options = PreprocessOptions::default();
        let (store, _) = preprocess(&data, &cfg, &summarizer, &options).unwrap();
        let before = store.snapshot();
        // Force recomputation of everything, with a solver that always
        // errors: the refresh must fail without mutating the store —
        // no removals, no partial inserts, no prior updates.
        store.set_target_prior("delay", -1.0);
        store.set_target_prior("cancelled", -1.0);
        let err = refresh(
            &data,
            &cfg,
            &FailingSummarizer { fail_on_row: 0 },
            &options,
            &store,
            &[],
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Core(_)));
        let after = store.snapshot();
        assert_eq!(before, after);
        for (a, b) in before.iter().zip(&after) {
            assert!(std::sync::Arc::ptr_eq(a, b), "{}", a.query);
        }
        // A subsequent successful refresh recovers fully.
        let report = refresh(&data, &cfg, &summarizer, &options, &store, &[]).unwrap();
        assert_eq!(report.recomputed, 24);
        assert_eq!(store.snapshot().len(), 24);
    }

    #[test]
    fn refresh_on_empty_store_equals_preprocess() {
        let data = tiny_dataset();
        let cfg = config();
        let summarizer = GreedySummarizer::with_optimized_pruning();
        let options = PreprocessOptions::default();
        let (reference, _) = preprocess(&data, &cfg, &summarizer, &options).unwrap();
        let store = SpeechStore::new();
        let report = refresh(&data, &cfg, &summarizer, &options, &store, &[]).unwrap();
        assert_eq!(report.recomputed, 24);
        assert_eq!(report.kept, 0);
        assert_eq!(store.snapshot(), reference.snapshot());
    }
}
