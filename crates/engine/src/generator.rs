//! The Problem Generator and batch pre-processing stage (§III).
//!
//! "The Problem Generator creates one query for each combination of a
//! target column and a subset of equality predicates, considering all
//! possible combinations of equality predicates up to the query length.
//! For each such query, we generate a speech summarizing values in the
//! target column for the data subset defined by the query predicates."
//!
//! Pre-processing is embarrassingly parallel across queries; the batch
//! runner fans work items out over `std::thread::scope` threads.

use std::time::{Duration, Instant};

use vqs_core::prelude::*;
use vqs_data::GeneratedDataset;
use vqs_relalg::hash::FxHashMap;

use crate::config::Configuration;
use crate::error::{EngineError, Result};
use crate::problem::{NamedFact, Query, StoredSpeech};
use crate::store::SpeechStore;
use crate::template::SpeechTemplate;

/// One pre-processing work item: a query and the rows of its data subset.
#[derive(Debug, Clone)]
pub struct WorkItem {
    /// The query to answer.
    pub query: Query,
    /// Row indexes of the subset within the target's relation.
    pub rows: Vec<usize>,
}

/// Batch pre-processing options.
#[derive(Debug, Clone)]
pub struct PreprocessOptions {
    /// Worker threads (default: available parallelism).
    pub workers: usize,
    /// Per-target speech templates; targets without an entry use
    /// [`SpeechTemplate::plain`].
    pub templates: FxHashMap<String, SpeechTemplate>,
}

impl Default for PreprocessOptions {
    fn default() -> Self {
        PreprocessOptions {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            templates: FxHashMap::default(),
        }
    }
}

/// Aggregate report of one pre-processing run (feeds Fig. 10's
/// per-query pre-processing time).
#[derive(Debug, Clone)]
pub struct PreprocessReport {
    /// Queries generated (= speeches attempted).
    pub queries: usize,
    /// Speeches stored.
    pub speeches: usize,
    /// Wall-clock time of the whole batch.
    pub elapsed: Duration,
    /// Summed work counters across all problems.
    pub instrumentation: Instrumentation,
}

impl PreprocessReport {
    /// Average pre-processing time per query.
    pub fn per_query(&self) -> Duration {
        if self.queries == 0 {
            Duration::ZERO
        } else {
            self.elapsed / self.queries as u32
        }
    }
}

/// Build the per-target relation with the paper's prior: "the average
/// value in the target column as a (constant) prior" — the *global*
/// average, kept constant across subsets.
pub fn target_relation(
    dataset: &GeneratedDataset,
    config: &Configuration,
    target: &str,
) -> Result<EncodedRelation> {
    for dim in &config.dimensions {
        if dataset.table.schema().index_of(dim).is_err() {
            return Err(EngineError::MissingColumn {
                column: dim.clone(),
            });
        }
    }
    if dataset.table.schema().index_of(target).is_err() {
        return Err(EngineError::MissingColumn {
            column: target.to_string(),
        });
    }
    let dims: Vec<&str> = config.dimensions.iter().map(String::as_str).collect();
    let relation =
        EncodedRelation::from_table(&dataset.table, &dims, target, Prior::Constant(0.0))?;
    let mean = relation.target_mean();
    Ok(relation.with_prior(Prior::Constant(mean))?)
}

/// Enumerate every query for one target: all predicate-dimension subsets
/// up to the configured length, with every value combination appearing in
/// the data (§III).
pub fn enumerate_queries(
    relation: &EncodedRelation,
    config: &Configuration,
    target: &str,
) -> Vec<WorkItem> {
    let dim_count = relation.dim_count();
    let mut items = Vec::new();
    for mask in 0u32..(1 << dim_count) {
        let size = mask.count_ones() as usize;
        if size > config.max_query_length {
            continue;
        }
        let dims: Vec<usize> = (0..dim_count).filter(|&d| mask & (1 << d) != 0).collect();
        // Partition rows by value combination on `dims`.
        let mut combos: FxHashMap<Vec<u32>, Vec<usize>> = FxHashMap::default();
        for row in 0..relation.len() {
            let key: Vec<u32> = dims.iter().map(|&d| relation.code(d, row)).collect();
            combos.entry(key).or_default().push(row);
        }
        let mut sorted: Vec<(Vec<u32>, Vec<usize>)> = combos.into_iter().collect();
        sorted.sort(); // deterministic order
        for (combo, rows) in sorted {
            let predicates: Vec<(String, String)> = dims
                .iter()
                .zip(&combo)
                .map(|(&d, &code)| {
                    let dim = &relation.dims()[d];
                    (dim.name.clone(), dim.values[code as usize].to_string())
                })
                .collect();
            items.push(WorkItem {
                query: Query::new(target.to_string(), predicates),
                rows,
            });
        }
    }
    items
}

/// Solve one work item into a stored speech.
pub fn solve_item<S: Summarizer + ?Sized>(
    relation: &EncodedRelation,
    config: &Configuration,
    summarizer: &S,
    template: &SpeechTemplate,
    item: &WorkItem,
) -> Result<(StoredSpeech, Instrumentation)> {
    let subset = relation.subset(&item.rows)?;
    // Dimensions not fixed by the query remain free for fact scopes.
    let fixed: Vec<&String> = item.query.predicates().iter().map(|(d, _)| d).collect();
    let free_dims: Vec<usize> = (0..subset.dim_count())
        .filter(|&d| !fixed.iter().any(|f| **f == subset.dims()[d].name))
        .collect();
    let min_dims = usize::from(!config.include_overall_fact && !free_dims.is_empty());
    let max_dims = config.max_fact_dimensions.min(free_dims.len());
    let catalog = FactCatalog::build_with_scope_sizes(&subset, &free_dims, min_dims, max_dims)?;
    let problem = Problem::new(&subset, &catalog, config.speech_length)?;
    let summary = summarizer.summarize(&problem)?;

    let facts: Vec<NamedFact> = summary
        .speech
        .facts()
        .iter()
        .map(|fact| NamedFact {
            scope: fact
                .scope
                .pairs()
                .into_iter()
                .map(|(d, code)| {
                    let dim = &subset.dims()[d];
                    (dim.name.clone(), dim.values[code as usize].to_string())
                })
                .collect(),
            value: fact.value,
            support: fact.support,
        })
        .collect();
    let text = template.render(&item.query, &facts);
    Ok((
        StoredSpeech {
            query: item.query.clone(),
            facts,
            text,
            utility: summary.utility,
            base_error: summary.base_error,
            rows: item.rows.len(),
        },
        summary.instrumentation,
    ))
}

/// Run the full pre-processing batch: every target, every query, in
/// parallel. Returns the populated speech store and a report.
pub fn preprocess<S: Summarizer + Sync + ?Sized>(
    dataset: &GeneratedDataset,
    config: &Configuration,
    summarizer: &S,
    options: &PreprocessOptions,
) -> Result<(SpeechStore, PreprocessReport)> {
    config.validate()?;
    let start = Instant::now();
    let store = SpeechStore::new();
    let mut total_queries = 0usize;
    let mut instrumentation = Instrumentation::default();

    for target in &config.targets {
        let relation = target_relation(dataset, config, target)?;
        let items = enumerate_queries(&relation, config, target);
        total_queries += items.len();
        let template = options
            .templates
            .get(target)
            .cloned()
            .unwrap_or_else(|| SpeechTemplate::plain(target));

        let workers = options.workers.max(1).min(items.len().max(1));
        let chunk_size = items.len().div_ceil(workers);
        let results: Vec<Result<Vec<(StoredSpeech, Instrumentation)>>> =
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for chunk in items.chunks(chunk_size.max(1)) {
                    let relation = &relation;
                    let template = &template;
                    handles.push(scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|item| solve_item(relation, config, summarizer, template, item))
                            .collect::<Result<Vec<_>>>()
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            });

        for worker_result in results {
            for (speech, counters) in worker_result? {
                instrumentation.merge(&counters);
                store.insert(speech);
            }
        }
    }

    let speeches = store.len();
    Ok((
        store,
        PreprocessReport {
            queries: total_queries,
            speeches,
            elapsed: start.elapsed(),
            instrumentation,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqs_data::{DimSpec, SynthSpec, TargetSpec};

    fn tiny_dataset() -> GeneratedDataset {
        SynthSpec {
            name: "tiny".to_string(),
            dims: vec![
                DimSpec::named("season", &["Winter", "Summer"]),
                DimSpec::named("region", &["East", "West", "North"]),
            ],
            targets: vec![
                TargetSpec::new("delay", 15.0, 8.0, 2.0, (0.0, 60.0)),
                TargetSpec::new("cancelled", 30.0, 10.0, 4.0, (0.0, 1000.0)),
            ],
            rows: 300,
        }
        .generate(11, 1.0)
    }

    fn config() -> Configuration {
        Configuration::new("tiny", &["season", "region"], &["delay", "cancelled"])
    }

    #[test]
    fn enumerates_all_present_combinations() {
        let data = tiny_dataset();
        let relation = target_relation(&data, &config(), "delay").unwrap();
        let items = enumerate_queries(&relation, &config(), "delay");
        // 1 empty + 2 seasons + 3 regions + 6 pairs = 12 (all combos occur
        // in 300 rows with overwhelming probability).
        assert_eq!(items.len(), 12);
        // Every subset is consistent with its predicates.
        for item in &items {
            assert!(!item.rows.is_empty());
            for (d, v) in item.query.predicates() {
                let dim = relation.dim_index(d).unwrap();
                for &row in &item.rows {
                    assert_eq!(relation.value_str(dim, row), v.as_str());
                }
            }
        }
        // Subsets of the same dimension set partition the rows.
        let season_rows: usize = items
            .iter()
            .filter(|i| i.query.len() == 1 && i.query.predicates()[0].0 == "season")
            .map(|i| i.rows.len())
            .sum();
        assert_eq!(season_rows, relation.len());
    }

    #[test]
    fn query_length_limit_respected() {
        let data = tiny_dataset();
        let mut cfg = config();
        cfg.max_query_length = 1;
        let relation = target_relation(&data, &cfg, "delay").unwrap();
        let items = enumerate_queries(&relation, &cfg, "delay");
        assert!(items.iter().all(|i| i.query.len() <= 1));
        assert_eq!(items.len(), 6);
    }

    #[test]
    fn preprocess_fills_store() {
        let data = tiny_dataset();
        let cfg = config();
        let summarizer = GreedySummarizer::with_optimized_pruning();
        let (store, report) =
            preprocess(&data, &cfg, &summarizer, &PreprocessOptions::default()).unwrap();
        // Two targets × 12 queries.
        assert_eq!(report.queries, 24);
        assert_eq!(report.speeches, 24);
        assert_eq!(store.len(), 24);
        assert!(report.per_query() > Duration::ZERO);
        // Every stored speech has at most speech_length facts and text.
        for query in store.queries() {
            let speech = store.get(&query).unwrap();
            assert!(speech.facts.len() <= cfg.speech_length);
            assert!(!speech.text.is_empty());
            assert!(speech.utility >= -1e-9);
        }
    }

    #[test]
    fn single_worker_matches_parallel() {
        let data = tiny_dataset();
        let cfg = config();
        let summarizer = GreedySummarizer::base();
        let serial = PreprocessOptions {
            workers: 1,
            ..Default::default()
        };
        let parallel = PreprocessOptions {
            workers: 8,
            ..Default::default()
        };
        let (s1, _) = preprocess(&data, &cfg, &summarizer, &serial).unwrap();
        let (s2, _) = preprocess(&data, &cfg, &summarizer, &parallel).unwrap();
        assert_eq!(s1.len(), s2.len());
        for query in s1.queries() {
            let a = s1.get(&query).unwrap();
            let b = s2.get(&query).unwrap();
            assert!((a.utility - b.utility).abs() < 1e-9, "{query}");
        }
    }

    #[test]
    fn missing_columns_reported() {
        let data = tiny_dataset();
        let bad = Configuration::new("tiny", &["season", "nonexistent"], &["delay"]);
        let err = preprocess(
            &data,
            &bad,
            &GreedySummarizer::base(),
            &PreprocessOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::MissingColumn { .. }));
    }

    #[test]
    fn full_length_queries_get_overall_fact_only_when_no_free_dims() {
        let data = tiny_dataset();
        let mut cfg = config();
        cfg.max_query_length = 2; // queries can fix both dimensions
        cfg.include_overall_fact = false;
        let (store, _) = preprocess(
            &data,
            &cfg,
            &GreedySummarizer::base(),
            &PreprocessOptions {
                workers: 2,
                ..Default::default()
            },
        )
        .unwrap();
        // A query fixing both dims has no free dimensions; its only
        // candidate fact is the subset average.
        let q = store
            .queries()
            .into_iter()
            .find(|q| q.len() == 2 && q.target() == "delay")
            .unwrap();
        let speech = store.get(&q).unwrap();
        assert_eq!(speech.facts.len(), 1);
        assert!(speech.facts[0].scope.is_empty());
    }
}
