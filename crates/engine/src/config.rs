//! The system Configuration (§III, Fig. 2).
//!
//! "The queries to consider are described in a Configuration file. …
//! It specifies the maximal query length to consider, the columns on which
//! to allow predicates (we call them 'Dimensions'), and a set of target
//! columns." The file format is a minimal line-oriented `key = value`
//! syntax (lists comma-separated, `#` comments) so no external parser
//! dependency is needed.

use std::fmt;

/// Errors raised while parsing or validating a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Syntax error with line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description.
        detail: String,
    },
    /// Semantically invalid configuration.
    Invalid {
        /// Description.
        detail: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Parse { line, detail } => write!(f, "config line {line}: {detail}"),
            ConfigError::Invalid { detail } => write!(f, "invalid config: {detail}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Pre-processing configuration for one data set.
#[derive(Debug, Clone, PartialEq)]
pub struct Configuration {
    /// Data set / table name (informational).
    pub table: String,
    /// Dimension columns on which queries may place equality predicates.
    pub dimensions: Vec<String>,
    /// Target columns queries may ask about.
    pub targets: Vec<String>,
    /// Maximum number of equality predicates per query ("query length").
    pub max_query_length: usize,
    /// Maximum number of *additional* equality predicates per fact beyond
    /// the query's own (default 2, §III).
    pub max_fact_dimensions: usize,
    /// Maximum facts per speech (default 3: "user retention decreases
    /// sharply after three facts", §VIII-A).
    pub speech_length: usize,
    /// Include the overall-average fact (empty extra scope) as a
    /// candidate. On by default (Example 5's deployed speeches lead with
    /// the general value).
    pub include_overall_fact: bool,
    /// Worker threads *inside* one exact-solver invocation (the parallel
    /// branch-and-bound fan-out). Default 1: pre-processing already runs
    /// one problem per pool worker, so nested parallelism only pays off
    /// when a single huge instance dominates (or when solving
    /// interactively). `0` = the executor's maximum (all cores for the
    /// scoped default, the pool size when the fan-out rides the shared
    /// [`crate::service::SolverPool`]). Even with workers granted, tiny
    /// instances still solve sequentially: the solver estimates its tree
    /// as `facts × speech_length` and fans out only past
    /// `ExactSummarizer::fan_out_threshold` (default
    /// `DEFAULT_FAN_OUT_THRESHOLD = 4096`), so fan-out overhead can never
    /// make a µs-scale search slower. Results are byte-identical for
    /// every worker count.
    pub solver_workers: usize,
}

impl Default for Configuration {
    fn default() -> Self {
        Configuration {
            table: String::new(),
            dimensions: Vec::new(),
            targets: Vec::new(),
            max_query_length: 2,
            max_fact_dimensions: 2,
            speech_length: 3,
            include_overall_fact: true,
            solver_workers: 1,
        }
    }
}

impl Configuration {
    /// Convenience constructor with the paper's defaults.
    pub fn new(table: &str, dimensions: &[&str], targets: &[&str]) -> Self {
        Configuration {
            table: table.to_string(),
            dimensions: dimensions.iter().map(|s| s.to_string()).collect(),
            targets: targets.iter().map(|s| s.to_string()).collect(),
            ..Default::default()
        }
    }

    /// Validate invariants.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.dimensions.is_empty() {
            return Err(ConfigError::Invalid {
                detail: "no dimensions configured".into(),
            });
        }
        if self.targets.is_empty() {
            return Err(ConfigError::Invalid {
                detail: "no targets configured".into(),
            });
        }
        if self.speech_length == 0 {
            return Err(ConfigError::Invalid {
                detail: "speech_length must be ≥ 1".into(),
            });
        }
        for dim in &self.dimensions {
            if self.targets.contains(dim) {
                return Err(ConfigError::Invalid {
                    detail: format!("column '{dim}' is both dimension and target"),
                });
            }
        }
        let mut seen = std::collections::HashSet::new();
        for dim in &self.dimensions {
            if !seen.insert(dim) {
                return Err(ConfigError::Invalid {
                    detail: format!("duplicate dimension '{dim}'"),
                });
            }
        }
        Ok(())
    }

    /// Parse the line-oriented config format:
    ///
    /// ```text
    /// # flight statistics deployment
    /// table = flights
    /// dimensions = airline, origin_region, season
    /// targets = cancelled
    /// max_query_length = 2
    /// max_fact_dimensions = 2
    /// speech_length = 3
    /// include_overall_fact = true
    /// ```
    pub fn parse(text: &str) -> Result<Configuration, ConfigError> {
        let mut config = Configuration::default();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| ConfigError::Parse {
                line: line_no,
                detail: format!("expected 'key = value', got '{line}'"),
            })?;
            let key = key.trim();
            let value = value.trim();
            let parse_usize = |v: &str| {
                v.parse::<usize>().map_err(|_| ConfigError::Parse {
                    line: line_no,
                    detail: format!("'{v}' is not a non-negative integer"),
                })
            };
            let parse_list = |v: &str| -> Vec<String> {
                v.split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            };
            match key {
                "table" => config.table = value.to_string(),
                "dimensions" => config.dimensions = parse_list(value),
                "targets" => config.targets = parse_list(value),
                "max_query_length" => config.max_query_length = parse_usize(value)?,
                "max_fact_dimensions" => config.max_fact_dimensions = parse_usize(value)?,
                "speech_length" => config.speech_length = parse_usize(value)?,
                "solver_workers" => config.solver_workers = parse_usize(value)?,
                "include_overall_fact" => {
                    config.include_overall_fact = match value {
                        "true" | "yes" | "1" => true,
                        "false" | "no" | "0" => false,
                        other => {
                            return Err(ConfigError::Parse {
                                line: line_no,
                                detail: format!("'{other}' is not a boolean"),
                            })
                        }
                    }
                }
                other => {
                    return Err(ConfigError::Parse {
                        line: line_no,
                        detail: format!("unknown key '{other}'"),
                    })
                }
            }
        }
        config.validate()?;
        Ok(config)
    }

    /// Serialize back to the config format (round-trips through
    /// [`Configuration::parse`]).
    pub fn to_config_string(&self) -> String {
        format!(
            "table = {}\ndimensions = {}\ntargets = {}\nmax_query_length = {}\n\
             max_fact_dimensions = {}\nspeech_length = {}\ninclude_overall_fact = {}\n\
             solver_workers = {}\n",
            self.table,
            self.dimensions.join(", "),
            self.targets.join(", "),
            self.max_query_length,
            self.max_fact_dimensions,
            self.speech_length,
            self.include_overall_fact,
            self.solver_workers,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# flight statistics deployment
table = flights
dimensions = airline, origin_region, season
targets = cancelled

max_query_length = 2
speech_length = 3
";

    #[test]
    fn parses_sample() {
        let config = Configuration::parse(SAMPLE).unwrap();
        assert_eq!(config.table, "flights");
        assert_eq!(
            config.dimensions,
            vec!["airline", "origin_region", "season"]
        );
        assert_eq!(config.targets, vec!["cancelled"]);
        assert_eq!(config.max_query_length, 2);
        assert_eq!(config.max_fact_dimensions, 2); // default
        assert!(config.include_overall_fact);
        assert_eq!(config.solver_workers, 1); // default: pool-level parallelism
    }

    #[test]
    fn solver_workers_parse_and_roundtrip() {
        let text = "dimensions = a\ntargets = t\nsolver_workers = 8";
        let config = Configuration::parse(text).unwrap();
        assert_eq!(config.solver_workers, 8);
        let reparsed = Configuration::parse(&config.to_config_string()).unwrap();
        assert_eq!(config, reparsed);
        assert!(Configuration::parse("dimensions = a\ntargets = t\nsolver_workers = x").is_err());
    }

    #[test]
    fn roundtrip() {
        let config = Configuration::parse(SAMPLE).unwrap();
        let reparsed = Configuration::parse(&config.to_config_string()).unwrap();
        assert_eq!(config, reparsed);
    }

    #[test]
    fn rejects_bad_syntax() {
        assert!(matches!(
            Configuration::parse("dimensions airline"),
            Err(ConfigError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            Configuration::parse("max_query_length = two\ndimensions = a\ntargets = t"),
            Err(ConfigError::Parse { line: 1, .. })
        ));
        assert!(Configuration::parse("unknown_key = 1").is_err());
    }

    #[test]
    fn rejects_invalid_semantics() {
        assert!(Configuration::parse("table = t").is_err()); // no dims/targets
        let overlapping = "dimensions = a, b\ntargets = a";
        assert!(matches!(
            Configuration::parse(overlapping),
            Err(ConfigError::Invalid { .. })
        ));
        let duplicate = "dimensions = a, a\ntargets = t";
        assert!(Configuration::parse(duplicate).is_err());
        let zero_speech = "dimensions = a\ntargets = t\nspeech_length = 0";
        assert!(Configuration::parse(zero_speech).is_err());
    }

    #[test]
    fn boolean_forms() {
        let base = "dimensions = a\ntargets = t\ninclude_overall_fact = ";
        assert!(
            !Configuration::parse(&format!("{base}no"))
                .unwrap()
                .include_overall_fact
        );
        assert!(
            Configuration::parse(&format!("{base}1"))
                .unwrap()
                .include_overall_fact
        );
        assert!(Configuration::parse(&format!("{base}maybe")).is_err());
    }
}
