//! Streaming ingestion: an incremental dataflow from row deltas to
//! re-summarized speeches.
//!
//! The paper's pipeline is offline-then-online: §III pre-processes a
//! *static* table into the speech store. This module makes a tenant's
//! data mutable at runtime without ever taking the store out of service:
//!
//! 1. **Row log** — callers hand batches of [`RowDelta`]s to
//!    [`crate::service::VoiceService::ingest`] (or
//!    [`crate::service::FrontEnd::submit_ingest`], which rides the
//!    serving front-end's background control lane). Every accepted delta
//!    is stamped with a monotonically increasing per-tenant sequence
//!    number and applied to the tenant's materialized table.
//! 2. **Invalidation circuit** — each delta is mapped through the same
//!    dimension-subset definitions the offline enumerator uses
//!    (`vqs_core::delta`) to the exact set of `(query-subset, target)`
//!    summaries it can invalidate, instead of re-diffing the dataset. A
//!    dimension change dirties the row's old and new value combinations
//!    for every target; a target-value change dirties only that target's
//!    combinations. The §III constant prior (the global target mean) is
//!    compared bit-for-bit at flush time, so any drift invalidates that
//!    target wholesale — exactly the batch-refresh rule.
//! 3. **Debounced re-summarizer** — invalidations coalesce per query
//!    subset in a dirty set; the log is flushed through
//!    `generator::resummarize_with` on the shared solver pool's Bulk
//!    lane when the dirty set reaches [`IngestBuilder::max_dirty`] or
//!    [`IngestBuilder::flush_interval`] elapses, rate-bounded by
//!    [`IngestBuilder::max_solves_per_sec`]. Lookups keep serving the
//!    last-good speech until its replacement is atomically swapped in.
//!
//! **Convergence contract:** once the log drains (every accepted seqno
//! flushed), the store snapshot is byte-identical to a cold
//! `preprocess` of the final table — the same contract the batch
//! `refresh` path honors, enforced by funneling both paths through one
//! shared invalidation/re-solve core.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use vqs_core::prelude::{masked_combo, subset_masks};
use vqs_data::GeneratedDataset;
use vqs_relalg::hash::{FxHashMap, FxHashSet};
use vqs_relalg::prelude::{Schema, Table, Value};

use crate::config::Configuration;
use crate::error::{EngineError, Result};
use crate::generator::DirtyKey;

/// One row-level change to a tenant's data, interpreted against the
/// table state produced by all previously accepted deltas.
///
/// Rows are full tuples in the registered dataset's column order.
/// Indexes address the *current* materialized table: a `Delete` shifts
/// every subsequent row down by one, exactly like `Vec::remove`.
#[derive(Debug, Clone, PartialEq)]
pub enum RowDelta {
    /// Append a new row.
    Insert(Vec<Value>),
    /// Replace the row at `row` wholesale.
    Update {
        /// Index of the row to replace.
        row: usize,
        /// The replacement tuple.
        values: Vec<Value>,
    },
    /// Remove the row at `row` (subsequent rows shift down).
    Delete {
        /// Index of the row to remove.
        row: usize,
    },
}

/// Budget and backpressure configuration for one tenant's streaming
/// ingestion, passed to
/// [`TenantSpec::ingest`](crate::service::TenantSpec::ingest).
#[derive(Debug, Clone)]
pub struct IngestBuilder {
    pub(crate) max_dirty: usize,
    pub(crate) flush_interval: Duration,
    pub(crate) max_solves_per_sec: u32,
}

impl Default for IngestBuilder {
    fn default() -> IngestBuilder {
        IngestBuilder::new()
    }
}

impl IngestBuilder {
    /// Start from the defaults: flush after 256 pending deltas or 50 ms,
    /// with no re-solve rate cap.
    pub fn new() -> IngestBuilder {
        IngestBuilder {
            max_dirty: 256,
            flush_interval: Duration::from_millis(50),
            max_solves_per_sec: 0,
        }
    }

    /// Maximum pending (accepted but not yet re-summarized) deltas
    /// before the accepting call flushes inline — the row log's bound,
    /// and the backpressure mechanism: past it, ingestors pay for the
    /// re-solve themselves. Clamped to at least 1. This bound overrides
    /// the rate cap; the log may never grow without limit.
    pub fn max_dirty(mut self, deltas: usize) -> IngestBuilder {
        self.max_dirty = deltas.max(1);
        self
    }

    /// Coalescing window: pending deltas also flush once this much time
    /// passed since the last flush, so a trickle of updates reaches the
    /// store without ever filling `max_dirty`.
    pub fn flush_interval(mut self, interval: Duration) -> IngestBuilder {
        self.flush_interval = interval;
        self
    }

    /// Bound on the sustained re-summarization rate: after a flush that
    /// re-solved `n` summaries, the next *automatic* flush is held back
    /// for `n / rate` seconds. `0` (the default) means unbounded.
    /// Forced drains and the `max_dirty` bound ignore the cap.
    pub fn max_solves_per_sec(mut self, rate: u32) -> IngestBuilder {
        self.max_solves_per_sec = rate;
        self
    }
}

/// Outcome of one accepted delta batch.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// Deltas accepted into the log by this call.
    pub accepted: usize,
    /// Sequence number stamped on the first accepted delta (0 when the
    /// batch was empty).
    pub first_seqno: u64,
    /// Sequence number stamped on the last accepted delta (0 when the
    /// batch was empty).
    pub last_seqno: u64,
    /// The flush this call performed inline, when the debounce window
    /// closed or the dirty-set bound was hit; `None` when the batch only
    /// coalesced into the pending set.
    pub flush: Option<FlushReport>,
}

/// Outcome of one flush of the pending delta log into the store.
#[derive(Debug, Clone, PartialEq)]
pub struct FlushReport {
    /// Deltas drained from the log by this flush.
    pub deltas: u64,
    /// Stored summaries this flush invalidated (re-solved or removed).
    pub invalidated: usize,
    /// Summaries re-solved and atomically swapped in.
    pub resummarized: usize,
    /// Stored summaries removed because their value combination
    /// vanished from the data.
    pub removed: usize,
    /// Live summaries left untouched (`Arc`-pointer-stable).
    pub kept: usize,
    /// Wall-clock time of the flush.
    pub elapsed: Duration,
}

impl FlushReport {
    /// A flush that found an empty log and did nothing.
    pub(crate) fn empty() -> FlushReport {
        FlushReport {
            deltas: 0,
            invalidated: 0,
            resummarized: 0,
            removed: 0,
            kept: 0,
            elapsed: Duration::ZERO,
        }
    }
}

/// Lifetime ingestion counters of one tenant, readable without the log
/// lock (surfaced through
/// [`TenantStats`](crate::service::TenantStats)).
#[derive(Debug, Default)]
pub(crate) struct IngestCounters {
    pub(crate) deltas_applied: AtomicU64,
    pub(crate) invalidated: AtomicU64,
    pub(crate) resummarized: AtomicU64,
    pub(crate) accepted_seqno: AtomicU64,
    pub(crate) applied_seqno: AtomicU64,
}

impl IngestCounters {
    /// Newest-accepted minus newest-applied sequence number: how far the
    /// store trails the log.
    pub(crate) fn lag(&self) -> u64 {
        self.accepted_seqno
            .load(Ordering::Relaxed)
            .saturating_sub(self.applied_seqno.load(Ordering::Relaxed))
    }
}

/// Per-tenant streaming state: options, the locked log/dirty-set, and
/// the lock-free counters.
#[derive(Debug)]
pub(crate) struct IngestState {
    pub(crate) options: IngestBuilder,
    pub(crate) inner: Mutex<IngestInner>,
    pub(crate) counters: IngestCounters,
}

impl IngestState {
    /// Materialize `dataset` as the tenant's mutable table and wire the
    /// invalidation circuit over `config`'s dimensions.
    pub(crate) fn new(
        options: IngestBuilder,
        dataset: &GeneratedDataset,
        config: &Configuration,
    ) -> Result<IngestState> {
        let schema = dataset.table.schema().clone();
        let mut dim_cols = Vec::with_capacity(config.dimensions.len());
        for dim in &config.dimensions {
            dim_cols.push(schema.index_of(dim)?);
        }
        let mut target_cols = Vec::with_capacity(config.targets.len());
        for target in &config.targets {
            target_cols.push(schema.index_of(target)?);
        }
        let now = Instant::now();
        let inner = IngestInner {
            name: dataset.name.clone(),
            dataset_dims: dataset.dims.clone(),
            dataset_targets: dataset.targets.clone(),
            dims: config.dimensions.clone(),
            targets: config.targets.clone(),
            dim_cols,
            target_cols,
            schema,
            rows: dataset.table.iter_rows().collect(),
            masks: subset_masks(config.dimensions.len(), config.max_query_length),
            dirty_all: FxHashSet::default(),
            dirty_by_target: FxHashMap::default(),
            pending: 0,
            accepted: 0,
            applied: 0,
            last_flush: now,
            hold_until: now,
        };
        Ok(IngestState {
            options,
            inner: Mutex::new(inner),
            counters: IngestCounters::default(),
        })
    }

    /// Whether the debounce window of an *automatic* flush is open:
    /// pending work, and either the dirty-set bound was hit (which
    /// overrides the rate cap — the log stays bounded) or the coalescing
    /// interval elapsed with the rate cap satisfied.
    pub(crate) fn auto_flush_due(&self, inner: &IngestInner) -> bool {
        if inner.pending == 0 {
            return false;
        }
        if inner.pending >= self.options.max_dirty as u64 {
            return true;
        }
        inner.last_flush.elapsed() >= self.options.flush_interval
            && Instant::now() >= inner.hold_until
    }
}

/// The locked half of [`IngestState`]: the materialized table, the
/// pending seqno window, and the coalesced dirty sets.
#[derive(Debug)]
pub(crate) struct IngestInner {
    name: String,
    dataset_dims: Vec<String>,
    dataset_targets: Vec<String>,
    /// The configured predicate dimensions, in configuration order —
    /// the circuit's dimension indexing.
    dims: Vec<String>,
    targets: Vec<String>,
    dim_cols: Vec<usize>,
    target_cols: Vec<usize>,
    schema: Schema,
    /// The materialized table: every accepted delta already applied.
    rows: Vec<Vec<Value>>,
    /// Admissible dimension-subset masks (shared with the enumerator).
    masks: Vec<u32>,
    /// Value combinations dirtied for every target, as normalized
    /// (sorted) predicate lists.
    dirty_all: FxHashSet<DirtyKey>,
    /// Value combinations dirtied for a single target only.
    dirty_by_target: FxHashMap<String, FxHashSet<DirtyKey>>,
    /// Deltas accepted but not yet flushed into the store.
    pub(crate) pending: u64,
    /// Newest accepted sequence number (0 = none yet).
    pub(crate) accepted: u64,
    /// Newest sequence number reflected in the store.
    pub(crate) applied: u64,
    pub(crate) last_flush: Instant,
    hold_until: Instant,
}

impl IngestInner {
    /// Validate a whole batch against the running row count, *then*
    /// apply every delta to the materialized table and fold its dirty
    /// keys into the coalesced sets. Validation is separated so a bad
    /// delta rejects the batch before any of it is applied. Returns the
    /// `(first, last)` sequence numbers stamped on the batch.
    pub(crate) fn accept(&mut self, deltas: &[RowDelta]) -> Result<(u64, u64)> {
        let mut count = self.rows.len();
        for (offset, delta) in deltas.iter().enumerate() {
            match delta {
                RowDelta::Insert(values) => {
                    self.validate_row(values, offset)?;
                    count += 1;
                }
                RowDelta::Update { row, values } => {
                    self.validate_index(*row, count, offset)?;
                    self.validate_row(values, offset)?;
                }
                RowDelta::Delete { row } => {
                    self.validate_index(*row, count, offset)?;
                    count -= 1;
                }
            }
        }
        let first = self.accepted + 1;
        for delta in deltas {
            self.apply(delta);
            self.accepted += 1;
            self.pending += 1;
        }
        Ok((first, self.accepted))
    }

    /// Arity, nullability, and column-type checks mirroring
    /// [`Table::push_row`], plus the circuit's own requirements: no NULL
    /// dimensions, numeric non-NULL targets (the relation encoder would
    /// reject them later, after acceptance — too late).
    fn validate_row(&self, values: &[Value], offset: usize) -> Result<()> {
        if values.len() != self.schema.len() {
            return Err(EngineError::InvalidDelta {
                detail: format!(
                    "delta #{offset}: row arity {} does not match schema arity {}",
                    values.len(),
                    self.schema.len()
                ),
            });
        }
        for (value, field) in values.iter().zip(self.schema.fields()) {
            if value.is_null() && !field.nullable {
                return Err(EngineError::InvalidDelta {
                    detail: format!(
                        "delta #{offset}: NULL in non-nullable column '{}'",
                        field.name
                    ),
                });
            }
            if !value.fits(field.ty) {
                return Err(EngineError::InvalidDelta {
                    detail: format!(
                        "delta #{offset}: {} value does not fit column '{}'",
                        value.type_name(),
                        field.name
                    ),
                });
            }
        }
        for (&col, dim) in self.dim_cols.iter().zip(&self.dims) {
            if values[col].is_null() {
                return Err(EngineError::InvalidDelta {
                    detail: format!("delta #{offset}: NULL dimension value in '{dim}'"),
                });
            }
        }
        for (&col, target) in self.target_cols.iter().zip(&self.targets) {
            if values[col].as_f64().is_none() {
                return Err(EngineError::InvalidDelta {
                    detail: format!("delta #{offset}: non-numeric target value in '{target}'"),
                });
            }
        }
        Ok(())
    }

    fn validate_index(&self, row: usize, count: usize, offset: usize) -> Result<()> {
        if row >= count {
            return Err(EngineError::InvalidDelta {
                detail: format!("delta #{offset}: row index {row} out of bounds ({count} rows)"),
            });
        }
        Ok(())
    }

    /// Apply one validated delta and mark the dirty keys it produces.
    fn apply(&mut self, delta: &RowDelta) {
        match delta {
            RowDelta::Insert(values) => {
                // Membership of every subset containing the new row
                // changes (and the prior drifts anyway).
                let dims = self.dim_values(values);
                self.mark_all(&dims);
                self.rows.push(values.clone());
            }
            RowDelta::Update { row, values } => {
                let old_dims = self.dim_values(&self.rows[*row]);
                let new_dims = self.dim_values(values);
                if old_dims != new_dims {
                    // The row moved between subsets: both its old and
                    // new combinations change content, for every target
                    // (facts scope over dimensions regardless of which
                    // target a summary describes).
                    self.mark_all(&old_dims);
                    self.mark_all(&new_dims);
                } else {
                    // Same subsets; only targets whose value changed
                    // have summaries with changed content.
                    let changed: Vec<String> = self
                        .target_cols
                        .iter()
                        .zip(&self.targets)
                        .filter(|&(&col, _)| self.rows[*row][col] != values[col])
                        .map(|(_, target)| target.clone())
                        .collect();
                    for target in changed {
                        self.mark_target(&target, &old_dims);
                    }
                }
                self.rows[*row] = values.clone();
            }
            RowDelta::Delete { row } => {
                let old = self.rows.remove(*row);
                let dims = self.dim_values(&old);
                self.mark_all(&dims);
            }
        }
    }

    /// The row's value on every circuit dimension, stringified exactly
    /// as the relation encoder does (so dirty keys compare equal to
    /// enumerated predicates). NULLs cannot occur here: inserts are
    /// validated and the registered table already passed the encoder.
    fn dim_values(&self, values: &[Value]) -> Vec<String> {
        self.dim_cols
            .iter()
            .map(|&col| match &values[col] {
                Value::Str(s) => s.to_string(),
                Value::Null => unreachable!("materialized rows have non-NULL dimensions"),
                other => other.to_string(),
            })
            .collect()
    }

    /// Mark every admissible combination of `dim_values` dirty for all
    /// targets.
    fn mark_all(&mut self, dim_values: &[String]) {
        for &mask in &self.masks {
            let key = self.combo_key(dim_values, mask);
            self.dirty_all.insert(key);
        }
    }

    /// Mark every admissible combination of `dim_values` dirty for one
    /// target.
    fn mark_target(&mut self, target: &str, dim_values: &[String]) {
        let mut keys = Vec::with_capacity(self.masks.len());
        for &mask in &self.masks {
            keys.push(self.combo_key(dim_values, mask));
        }
        self.dirty_by_target
            .entry(target.to_string())
            .or_default()
            .extend(keys);
    }

    /// The normalized predicate list of one `(row, mask)` pair — sorted
    /// by dimension name, exactly as [`crate::problem::Query`] stores
    /// predicates.
    fn combo_key(&self, dim_values: &[String], mask: u32) -> Vec<(String, String)> {
        let mut key: Vec<(String, String)> = masked_combo(dim_values, mask)
            .into_iter()
            .map(|(d, value)| (self.dims[d].clone(), value))
            .collect();
        key.sort();
        key
    }

    /// Materialize the current table as a dataset for the re-summarizer
    /// (and the runtime rebuild).
    pub(crate) fn dataset(&self) -> Result<GeneratedDataset> {
        let table = Table::from_rows(self.schema.clone(), self.rows.iter().cloned())?;
        Ok(GeneratedDataset {
            name: self.name.clone(),
            table,
            dims: self.dataset_dims.clone(),
            targets: self.dataset_targets.clone(),
        })
    }

    /// The coalesced dirty sets, for `generator::Invalidation::DirtyKeys`.
    pub(crate) fn dirty(
        &self,
    ) -> (
        &FxHashSet<DirtyKey>,
        &FxHashMap<String, FxHashSet<DirtyKey>>,
    ) {
        (&self.dirty_all, &self.dirty_by_target)
    }

    /// Book-keeping after a successful flush that re-solved `solves`
    /// summaries: the log is drained, the dirty sets cleared, and the
    /// rate-cap gate advanced.
    pub(crate) fn drained(&mut self, solves: usize, max_solves_per_sec: u32) {
        self.pending = 0;
        self.applied = self.accepted;
        self.dirty_all.clear();
        self.dirty_by_target.clear();
        self.last_flush = Instant::now();
        self.hold_until = if max_solves_per_sec > 0 {
            self.last_flush + Duration::from_secs_f64(solves as f64 / f64::from(max_solves_per_sec))
        } else {
            self.last_flush
        };
    }

    /// The caller handed an authoritative full dataset (a batch
    /// `refresh`): it replaces the materialized table, and everything
    /// pending is considered applied by that refresh.
    pub(crate) fn reset_from(&mut self, dataset: &GeneratedDataset) {
        self.rows = dataset.table.iter_rows().collect();
        self.schema = dataset.table.schema().clone();
        self.name = dataset.name.clone();
        self.dataset_dims = dataset.dims.clone();
        self.dataset_targets = dataset.targets.clone();
        self.drained(0, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> IngestState {
        use vqs_data::{DimSpec, SynthSpec, TargetSpec};
        let dataset = SynthSpec {
            name: "ingest".to_string(),
            dims: vec![
                DimSpec::named("season", &["Winter", "Summer"]),
                DimSpec::named("region", &["East", "West"]),
            ],
            targets: vec![TargetSpec::new("delay", 15.0, 8.0, 2.0, (0.0, 60.0))],
            rows: 8,
        }
        .generate(11, 1.0);
        let config = Configuration::new("ingest", &["season", "region"], &["delay"]);
        IngestState::new(IngestBuilder::new(), &dataset, &config).unwrap()
    }

    fn row(season: &str, region: &str, delay: f64) -> Vec<Value> {
        vec![Value::str(season), Value::str(region), Value::Float(delay)]
    }

    #[test]
    fn batches_validate_before_applying() {
        let state = state();
        let mut inner = state.inner.lock();
        let before = inner.rows.len();
        // Second delta is out of bounds: nothing of the batch applies.
        let err = inner
            .accept(&[
                RowDelta::Insert(row("Winter", "East", 12.0)),
                RowDelta::Delete { row: 999 },
            ])
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidDelta { .. }));
        assert_eq!(inner.rows.len(), before);
        assert_eq!(inner.accepted, 0);

        let err = inner
            .accept(&[RowDelta::Insert(vec![Value::Null])])
            .unwrap_err();
        assert!(err.to_string().contains("arity"));
        let err = inner
            .accept(&[RowDelta::Insert(vec![
                Value::Null,
                Value::str("East"),
                Value::Float(1.0),
            ])])
            .unwrap_err();
        assert!(err.to_string().contains("NULL"));
    }

    #[test]
    fn delete_shifts_indexes_like_vec_remove() {
        let state = state();
        let mut inner = state.inner.lock();
        let second = inner.rows[1].clone();
        let (first, last) = inner.accept(&[RowDelta::Delete { row: 0 }]).unwrap();
        assert_eq!((first, last), (1, 1));
        assert_eq!(inner.rows[0], second);
        assert_eq!(inner.pending, 1);
    }

    #[test]
    fn dimension_change_dirties_old_and_new_combos_for_all_targets() {
        let state = state();
        let mut inner = state.inner.lock();
        let mut moved = inner.rows[0].clone();
        let old_season = moved[0].as_str().unwrap().to_string();
        let new_season = if old_season == "Winter" {
            "Winter2"
        } else {
            "Winter"
        };
        moved[0] = Value::str(new_season);
        inner
            .accept(&[RowDelta::Update {
                row: 0,
                values: moved,
            }])
            .unwrap();
        let (all, by_target) = inner.dirty();
        assert!(by_target.is_empty());
        // Overall query, both season combos, and the region combo.
        assert!(all.contains(&Vec::new()));
        assert!(all.contains(&vec![("season".to_string(), old_season)]));
        assert!(all.contains(&vec![("season".to_string(), new_season.to_string())]));
    }

    #[test]
    fn target_only_change_dirties_only_that_target() {
        let state = state();
        let mut inner = state.inner.lock();
        let mut tweaked = inner.rows[0].clone();
        tweaked[2] = Value::Float(99.5);
        inner
            .accept(&[RowDelta::Update {
                row: 0,
                values: tweaked,
            }])
            .unwrap();
        let (all, by_target) = inner.dirty();
        assert!(all.is_empty());
        let dirty = &by_target["delay"];
        assert!(dirty.contains(&Vec::new()));
        assert_eq!(dirty.len(), 4); // overall, season, region, season×region
    }

    #[test]
    fn drain_bookkeeping_and_rate_gate() {
        let state = state();
        let mut inner = state.inner.lock();
        inner
            .accept(&[RowDelta::Insert(row("Winter", "East", 5.0))])
            .unwrap();
        assert!(state.auto_flush_due(&inner) || inner.pending > 0);
        inner.drained(10, 1);
        assert_eq!(inner.pending, 0);
        assert_eq!(inner.applied, inner.accepted);
        assert!(inner.hold_until > inner.last_flush);
        assert!(inner.dirty().0.is_empty());
    }

    #[test]
    fn materialized_dataset_round_trips() {
        let state = state();
        let mut inner = state.inner.lock();
        inner
            .accept(&[RowDelta::Insert(row("Summer", "West", 1.0))])
            .unwrap();
        let dataset = inner.dataset().unwrap();
        assert_eq!(dataset.table.len(), inner.rows.len());
        inner.reset_from(&dataset);
        assert_eq!(inner.pending, 0);
    }
}
