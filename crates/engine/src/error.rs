//! Engine error type.

use std::fmt;

use crate::config::ConfigError;

/// Errors raised by the end-to-end engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Configuration problem.
    Config(ConfigError),
    /// Error from the summarization core.
    Core(vqs_core::error::CoreError),
    /// Error from the relational engine.
    Relational(vqs_relalg::error::RelalgError),
    /// A configured column is missing from the data set.
    MissingColumn {
        /// The column name.
        column: String,
    },
    /// A service operation addressed a tenant that is not registered.
    UnknownTenant {
        /// The tenant name.
        name: String,
    },
    /// A dataset was registered under a name that is already taken.
    DuplicateTenant {
        /// The tenant name.
        name: String,
    },
    /// The serving front-end refused to admit the request: its ingress
    /// queue (or the named tenant's fair share of it) was full under the
    /// shed policy.
    Overloaded {
        /// The tenant the rejected request addressed.
        tenant: String,
    },
    /// A background job (registration, refresh, or task) panicked on a
    /// serving worker; the panic was contained and the job's ticket
    /// completed with this error instead of hanging its waiters.
    Internal {
        /// The panic payload, when it was a string.
        what: String,
    },
    /// A streaming-ingestion operation addressed a tenant that was
    /// registered without [`crate::ingest::IngestBuilder`] enabled.
    IngestDisabled {
        /// The tenant name.
        tenant: String,
    },
    /// A row delta failed validation; the whole batch was rejected
    /// before any of it was applied.
    InvalidDelta {
        /// What was wrong with the delta.
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Config(e) => write!(f, "configuration: {e}"),
            EngineError::Core(e) => write!(f, "summarization: {e}"),
            EngineError::Relational(e) => write!(f, "relational: {e}"),
            EngineError::MissingColumn { column } => {
                write!(
                    f,
                    "configured column '{column}' not present in the data set"
                )
            }
            EngineError::UnknownTenant { name } => {
                write!(f, "no tenant '{name}' is registered with this service")
            }
            EngineError::DuplicateTenant { name } => {
                write!(f, "a tenant named '{name}' is already registered")
            }
            EngineError::Overloaded { tenant } => {
                write!(
                    f,
                    "the front-end shed this request for tenant '{tenant}': admission queue full"
                )
            }
            EngineError::Internal { what } => {
                write!(f, "a serving worker contained a panic: {what}")
            }
            EngineError::IngestDisabled { tenant } => {
                write!(
                    f,
                    "tenant '{tenant}' was registered without streaming ingestion"
                )
            }
            EngineError::InvalidDelta { detail } => {
                write!(f, "rejected delta batch: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ConfigError> for EngineError {
    fn from(e: ConfigError) -> Self {
        EngineError::Config(e)
    }
}

impl From<vqs_core::error::CoreError> for EngineError {
    fn from(e: vqs_core::error::CoreError) -> Self {
        EngineError::Core(e)
    }
}

impl From<vqs_relalg::error::RelalgError> for EngineError {
    fn from(e: vqs_relalg::error::RelalgError) -> Self {
        EngineError::Relational(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EngineError = ConfigError::Invalid { detail: "x".into() }.into();
        assert!(e.to_string().contains("configuration"));
        let e: EngineError = vqs_relalg::error::RelalgError::DivisionByZero.into();
        assert!(e.to_string().contains("relational"));
        let e = EngineError::MissingColumn {
            column: "delay".into(),
        };
        assert!(e.to_string().contains("delay"));
        let e = EngineError::UnknownTenant {
            name: "flights".into(),
        };
        assert!(e.to_string().contains("no tenant 'flights'"));
        let e = EngineError::DuplicateTenant {
            name: "flights".into(),
        };
        assert!(e.to_string().contains("already registered"));
        let e = EngineError::Overloaded {
            tenant: "flights".into(),
        };
        assert!(e.to_string().contains("shed"));
        let e = EngineError::Internal {
            what: "boom".into(),
        };
        assert!(e.to_string().contains("boom"));
    }
}
