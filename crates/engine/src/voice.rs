//! The voice-query runtime: request in, speech out (Fig. 2 right side).
//!
//! At run time the system "merely looks up the best pre-generated speech"
//! (§VIII-E); the session layer adds help/repeat handling and latency
//! accounting for the Fig. 10 comparison.

use std::time::Instant;

use crate::extensions::ExtremumIndex;
use crate::nlq::{Extractor, Request, Unsupported};
use crate::store::{Lookup, SpeechStore};
use crate::template::speaking_time_secs;

/// What the system answered and how fast.
#[derive(Debug, Clone, PartialEq)]
pub struct VoiceResponse {
    /// The classified request.
    pub request: Request,
    /// Spoken answer text.
    pub text: String,
    /// Lookup + classification latency in microseconds (time until the
    /// system can start speaking).
    pub latency_micros: u64,
    /// Estimated speaking time of the answer, in seconds.
    pub speaking_secs: f64,
}

/// A stateful voice session over one deployment.
#[derive(Debug)]
pub struct VoiceSession<'a> {
    store: &'a SpeechStore,
    extractor: Extractor,
    help_text: String,
    last_output: Option<String>,
    extensions: Option<ExtremumIndex>,
}

impl<'a> VoiceSession<'a> {
    /// Open a session over a store and extractor.
    pub fn new(store: &'a SpeechStore, extractor: Extractor, help_text: impl Into<String>) -> Self {
        VoiceSession {
            store,
            extractor,
            help_text: help_text.into(),
            last_output: None,
            extensions: None,
        }
    }

    /// Enable the extremum/comparison extension (answers the §VIII-D
    /// "U-Query" shapes from a pre-computed index instead of apologizing).
    pub fn with_extensions(mut self, index: ExtremumIndex) -> Self {
        self.extensions = Some(index);
        self
    }

    /// Handle one voice request.
    pub fn respond(&mut self, text: &str) -> VoiceResponse {
        let start = Instant::now();
        let request = self.extractor.classify(text);
        let answer = match &request {
            Request::Help => self.help_text.clone(),
            Request::Repeat => self
                .last_output
                .clone()
                .unwrap_or_else(|| "I have not said anything yet.".to_string()),
            Request::Query(query) => match self.store.lookup(query) {
                Lookup::Exact(speech) => speech.text.clone(),
                Lookup::Generalized { speech, .. } => speech.text.clone(),
                Lookup::Miss => "I have no summary for that topic yet.".to_string(),
            },
            Request::Unsupported(reason) => match reason {
                Unsupported::Extremum => self
                    .extensions
                    .as_ref()
                    .and_then(|index| index.answer_extremum_text(text))
                    .unwrap_or_else(|| {
                        "I can only summarize averages, not find extremes.".to_string()
                    }),
                Unsupported::Comparison => self
                    .extensions
                    .as_ref()
                    .and_then(|index| index.answer_comparison_text(text))
                    .unwrap_or_else(|| {
                        "I cannot compare data subsets directly; ask about one subset at a time."
                            .to_string()
                    }),
                Unsupported::UnavailableData => {
                    "That data is not part of this deployment.".to_string()
                }
            },
            Request::Other => "Sorry, I did not understand. Say 'help' for examples.".to_string(),
        };
        let latency_micros = start.elapsed().as_micros() as u64;
        self.last_output = Some(answer.clone());
        VoiceResponse {
            request,
            speaking_secs: speaking_time_secs(&answer),
            text: answer,
            latency_micros,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Query, StoredSpeech};
    use vqs_core::prelude::{EncodedRelation, Prior};

    fn relation() -> EncodedRelation {
        EncodedRelation::from_rows(
            &["season"],
            "cancelled",
            vec![(vec!["Winter"], 20.0), (vec!["Summer"], 10.0)],
            Prior::Constant(0.0),
        )
        .unwrap()
    }

    fn store() -> SpeechStore {
        let store = SpeechStore::new();
        store.insert(StoredSpeech {
            query: Query::of("cancelled", &[("season", "Winter")]),
            facts: vec![],
            text: "The cancellation probability for season Winter is about 20 percent.".to_string(),
            utility: 1.0,
            base_error: 2.0,
            rows: 1,
        });
        store.insert(StoredSpeech {
            query: Query::of("cancelled", &[]),
            facts: vec![],
            text: "The cancellation probability overall is about 15 percent.".to_string(),
            utility: 1.0,
            base_error: 2.0,
            rows: 2,
        });
        store
    }

    fn session(store: &SpeechStore) -> VoiceSession<'_> {
        let extractor = Extractor::from_relation(&relation(), 2)
            .with_target_synonyms("cancelled", &["cancellations"]);
        VoiceSession::new(store, extractor, "Ask about cancellations by season.")
    }

    #[test]
    fn answers_supported_query() {
        let store = store();
        let mut session = session(&store);
        let response = session.respond("cancellations in winter?");
        assert!(response.text.contains("Winter"));
        assert!(matches!(response.request, Request::Query(_)));
        assert!(response.speaking_secs > 0.0);
    }

    #[test]
    fn repeat_replays_last_output() {
        let store = store();
        let mut session = session(&store);
        assert!(session
            .respond("say that again")
            .text
            .contains("not said anything"));
        let first = session.respond("cancellations in winter").text;
        let repeated = session.respond("repeat that").text;
        assert_eq!(first, repeated);
    }

    #[test]
    fn help_and_fallbacks() {
        let store = store();
        let mut session = session(&store);
        assert!(session.respond("help").text.contains("Ask about"));
        // Unknown season value for this deployment: falls back to the
        // overall speech via the store's generalization lookup.
        let response = session.respond("cancellations in summer");
        assert!(response.text.contains("overall"));
        let response = session.respond("what is the weather");
        assert!(matches!(response.request, Request::Other));
    }

    #[test]
    fn unsupported_requests_are_explained() {
        let store = store();
        let mut session = session(&store);
        let response = session.respond("compare cancellations in winter versus summer");
        assert!(matches!(response.request, Request::Unsupported(_)));
        assert!(response.text.contains("compare"));
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::extensions::ExtremumIndex;
    use crate::problem::{Query, StoredSpeech};
    use vqs_core::prelude::{EncodedRelation, Prior};

    fn relation() -> EncodedRelation {
        EncodedRelation::from_rows(
            &["airline"],
            "cancelled",
            vec![
                (vec!["Delta"], 60.0),
                (vec!["United"], 20.0),
                (vec!["Alaska"], 10.0),
            ],
            Prior::Constant(0.0),
        )
        .unwrap()
    }

    fn store() -> SpeechStore {
        let store = SpeechStore::new();
        store.insert(StoredSpeech {
            query: Query::of("cancelled", &[]),
            facts: vec![],
            text: "The cancellation probability overall is about 30.".to_string(),
            utility: 1.0,
            base_error: 2.0,
            rows: 3,
        });
        store
    }

    #[test]
    fn extensions_answer_extremum_queries() {
        let relation = relation();
        let store = store();
        let extractor = Extractor::from_relation(&relation, 2)
            .with_target_synonyms("cancelled", &["cancellations"]);
        let index = ExtremumIndex::build(&relation, "cancellation probability");
        let mut session = VoiceSession::new(&store, extractor, "help").with_extensions(index);
        let response = session.respond("which airline has the most cancellations");
        assert!(matches!(
            response.request,
            Request::Unsupported(Unsupported::Extremum)
        ));
        assert!(
            response.text.contains("Delta has the highest"),
            "{}",
            response.text
        );
    }

    #[test]
    fn extensions_answer_comparison_queries() {
        let relation = relation();
        let store = store();
        let extractor = Extractor::from_relation(&relation, 2)
            .with_target_synonyms("cancelled", &["cancellations"]);
        let index = ExtremumIndex::build(&relation, "cancellation probability");
        let mut session = VoiceSession::new(&store, extractor, "help").with_extensions(index);
        let response =
            session.respond("make a comparison between cancellations for Delta and Alaska");
        assert!(matches!(
            response.request,
            Request::Unsupported(Unsupported::Comparison)
        ));
        assert!(response.text.contains("times"), "{}", response.text);
    }

    #[test]
    fn without_extensions_the_apology_remains() {
        let relation = relation();
        let store = store();
        let extractor = Extractor::from_relation(&relation, 2)
            .with_target_synonyms("cancelled", &["cancellations"]);
        let mut session = VoiceSession::new(&store, extractor, "help");
        let response = session.respond("which airline has the most cancellations");
        assert!(response.text.contains("not find extremes"));
    }
}
