//! The stateful voice-session runtime (Fig. 2 right side).
//!
//! At run time the system "merely looks up the best pre-generated speech"
//! (§VIII-E); the session layer adds per-user conversation state (repeat
//! handling) and latency accounting on top of the same typed answer
//! pipeline the [`crate::service::VoiceService`] facade uses for
//! stateless traffic. Sessions own an [`Arc`] handle to the speech
//! store, so they can be stored next to (and outlive) the service or
//! store that spawned them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;

use crate::extensions::ExtremumIndex;
use crate::nlq::{Extractor, Request};
use crate::pipeline::{self, Exec, PipelineContext};
use crate::service::{
    Answer, Degradation, RequestCounters, ServiceResponse, TenantRuntime, NOTHING_TO_REPEAT,
};

/// Monotonic source of session ids — process-wide, so ids stay unique
/// (and stable for the session's lifetime) across services and tenants.
static NEXT_SESSION_ID: AtomicU64 = AtomicU64::new(1);
use crate::store::SpeechStore;
use crate::template::speaking_time_secs;

/// A stateful voice session over one deployment. Each session carries a
/// process-unique stable [`VoiceSession::id`], stamped into every
/// response it answers.
#[derive(Debug)]
pub struct VoiceSession {
    id: u64,
    tenant: String,
    store: Arc<SpeechStore>,
    extractor: Extractor,
    help_text: String,
    last: Option<Answer>,
    extensions: Option<ExtremumIndex>,
    /// When opened via [`crate::service::VoiceService::session`], the
    /// tenant's live extractor/extension state: refreshes reach open
    /// sessions instead of leaving them on snapshotted dictionaries.
    shared: Option<Arc<RwLock<TenantRuntime>>>,
    /// When opened via [`crate::service::VoiceService::session`], the
    /// tenant's request counters: session traffic rolls up into the
    /// same per-tenant accounting as stateless respond traffic, so
    /// fairness/stats consumers see conversation load too.
    counters: Option<Arc<RequestCounters>>,
}

impl VoiceSession {
    /// Open a session over a store and extractor. Prefer
    /// [`crate::service::VoiceService::session`], which wires all of this
    /// from the tenant registration.
    pub fn new(
        store: Arc<SpeechStore>,
        extractor: Extractor,
        help_text: impl Into<String>,
    ) -> Self {
        VoiceSession {
            id: NEXT_SESSION_ID.fetch_add(1, Ordering::Relaxed),
            tenant: String::new(),
            store,
            extractor,
            help_text: help_text.into(),
            last: None,
            extensions: None,
            shared: None,
            counters: None,
        }
    }

    /// The stable, process-unique id of this session (stamped into
    /// every [`ServiceResponse::session`] it produces).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Follow a tenant's live runtime instead of the construction-time
    /// extractor/extension snapshot (wired by
    /// [`crate::service::VoiceService::session`]).
    pub(crate) fn with_shared_runtime(mut self, runtime: Arc<RwLock<TenantRuntime>>) -> Self {
        self.shared = Some(runtime);
        self
    }

    /// Roll this session's answered requests into the tenant's request
    /// counters (wired by [`crate::service::VoiceService::session`]).
    pub(crate) fn with_counters(mut self, counters: Arc<RequestCounters>) -> Self {
        self.counters = Some(counters);
        self
    }

    /// Enable the extremum/comparison extension (answers the §VIII-D
    /// "U-Query" shapes from a pre-computed index instead of
    /// apologizing). On a session opened via
    /// [`crate::service::VoiceService::session`] this *overrides* the
    /// tenant's registered index for this session only.
    pub fn with_extensions(mut self, index: ExtremumIndex) -> Self {
        self.extensions = Some(index);
        self
    }

    /// Label responses with the tenant this session serves (set by
    /// [`crate::service::VoiceService::session`]).
    pub fn with_tenant_label(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Handle one voice request through the staged pipeline. `Repeat`
    /// replays the previous *answer* (not just its text), so callers can
    /// still branch on the replayed structure. Live-path plans execute
    /// inline on the calling thread — sessions hold no pool handle.
    pub fn answer(&mut self, text: &str) -> ServiceResponse {
        let start = Instant::now();
        let shared = self.shared.as_ref().map(|runtime| runtime.read());
        let (extractor, extensions, live) = match &shared {
            // A session-local index set via `with_extensions` overrides
            // the tenant's; the extractor always follows the live
            // runtime so refreshed dictionaries apply mid-conversation.
            Some(runtime) => (
                &runtime.extractor,
                self.extensions.as_ref().or(runtime.extensions.as_ref()),
                runtime.live.as_ref(),
            ),
            None => (&self.extractor, self.extensions.as_ref(), None),
        };
        let analysis = pipeline::analyze::analyze(extractor, text);
        let (answer, follow_on) = match &analysis.request {
            Request::Repeat => (
                self.last.clone().unwrap_or(Answer::Help {
                    text: NOTHING_TO_REPEAT.to_string(),
                }),
                None,
            ),
            _ => {
                let ctx = PipelineContext {
                    store: &self.store,
                    help_text: &self.help_text,
                    extensions,
                    live,
                    exec: Exec::Inline,
                    // Sessions are interactive turn-taking — no queueing,
                    // so no deadline ladder; answers stay full-quality.
                    deadline: None,
                    solve: None,
                };
                let (answer, follow_on, _) = pipeline::answer(&analysis, text, &ctx);
                self.last = Some(answer.clone());
                (answer, follow_on)
            }
        };
        drop(shared);
        if let Some(counters) = &self.counters {
            counters.record(&answer, Degradation::None);
        }
        ServiceResponse {
            tenant: self.tenant.clone(),
            request: Some(analysis.request),
            speaking_secs: speaking_time_secs(answer.text()),
            follow_on,
            session: Some(self.id),
            latency_micros: start.elapsed().as_micros() as u64,
            degradation: Degradation::None,
            answer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Query, StoredSpeech};
    use vqs_core::prelude::{EncodedRelation, Prior};

    fn relation() -> EncodedRelation {
        EncodedRelation::from_rows(
            &["season"],
            "cancelled",
            vec![(vec!["Winter"], 20.0), (vec!["Summer"], 10.0)],
            Prior::Constant(0.0),
        )
        .unwrap()
    }

    fn store() -> Arc<SpeechStore> {
        let store = SpeechStore::new();
        store.insert(StoredSpeech {
            query: Query::of("cancelled", &[("season", "Winter")]),
            facts: vec![],
            text: "The cancellation probability for season Winter is about 20 percent.".to_string(),
            utility: 1.0,
            base_error: 2.0,
            rows: 1,
        });
        store.insert(StoredSpeech {
            query: Query::of("cancelled", &[]),
            facts: vec![],
            text: "The cancellation probability overall is about 15 percent.".to_string(),
            utility: 1.0,
            base_error: 2.0,
            rows: 2,
        });
        Arc::new(store)
    }

    fn session(store: &Arc<SpeechStore>) -> VoiceSession {
        let extractor = Extractor::from_relation(&relation(), 2)
            .with_target_synonyms("cancelled", &["cancellations"]);
        VoiceSession::new(
            Arc::clone(store),
            extractor,
            "Ask about cancellations by season.",
        )
    }

    #[test]
    fn answers_supported_query() {
        let store = store();
        let mut session = session(&store);
        let response = session.answer("cancellations in winter?");
        assert!(response.text().contains("Winter"));
        assert!(matches!(response.request, Some(Request::Query(_))));
        assert!(matches!(
            response.answer,
            Answer::Speech {
                kept_predicates: None,
                ..
            }
        ));
        assert!(response.speaking_secs > 0.0);
    }

    #[test]
    fn repeat_replays_last_answer() {
        let store = store();
        let mut session = session(&store);
        assert!(session
            .answer("say that again")
            .text()
            .contains("not said anything"));
        let first = session.answer("cancellations in winter");
        let repeated = session.answer("repeat that");
        assert_eq!(first.text(), repeated.text());
        // The replay carries the typed answer, not just the text.
        assert!(repeated.answer.is_speech());
        assert!(matches!(repeated.request, Some(Request::Repeat)));
    }

    #[test]
    fn help_and_fallbacks() {
        let store = store();
        let mut session = session(&store);
        assert!(session.answer("help").text().contains("Ask about"));
        // Unknown season value for this deployment: falls back to the
        // overall speech via the store's generalization lookup.
        let response = session.answer("cancellations in summer");
        assert!(response.text().contains("overall"));
        assert!(matches!(
            response.answer,
            Answer::Speech {
                kept_predicates: Some(0),
                ..
            }
        ));
        let response = session.answer("what is the weather");
        assert!(matches!(response.request, Some(Request::Other)));
        assert!(matches!(response.answer, Answer::Help { .. }));
    }

    #[test]
    fn unsupported_requests_are_explained() {
        let store = store();
        let mut session = session(&store);
        let response = session.answer("compare cancellations in winter versus summer");
        assert!(matches!(response.request, Some(Request::Unsupported(_))));
        assert!(response.text().contains("compare"));
        assert!(matches!(response.answer, Answer::Unsupported { .. }));
    }

    #[test]
    fn sessions_outlive_their_creator_scope() {
        // The Arc handle (not a borrow) makes sessions storable: build
        // the session in an inner scope and use it after the original
        // store binding is gone.
        let mut session = {
            let store = store();
            session(&store)
        };
        assert!(session
            .answer("cancellations in winter")
            .text()
            .contains("Winter"));
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::extensions::ExtremumIndex;
    use crate::problem::{Query, StoredSpeech};
    use vqs_core::prelude::{EncodedRelation, Prior};

    fn relation() -> EncodedRelation {
        EncodedRelation::from_rows(
            &["airline"],
            "cancelled",
            vec![
                (vec!["Delta"], 60.0),
                (vec!["United"], 20.0),
                (vec!["Alaska"], 10.0),
            ],
            Prior::Constant(0.0),
        )
        .unwrap()
    }

    fn store() -> Arc<SpeechStore> {
        let store = SpeechStore::new();
        store.insert(StoredSpeech {
            query: Query::of("cancelled", &[]),
            facts: vec![],
            text: "The cancellation probability overall is about 30.".to_string(),
            utility: 1.0,
            base_error: 2.0,
            rows: 3,
        });
        Arc::new(store)
    }

    #[test]
    fn extensions_answer_extremum_queries() {
        let relation = relation();
        let store = store();
        let extractor = Extractor::from_relation(&relation, 2)
            .with_target_synonyms("cancelled", &["cancellations"]);
        let index = ExtremumIndex::build(&relation, "cancellation probability");
        let mut session = VoiceSession::new(store, extractor, "help").with_extensions(index);
        let response = session.answer("which airline has the most cancellations");
        assert!(matches!(response.answer, Answer::Extension { .. }));
        assert!(
            response.text().contains("Delta has the highest"),
            "{}",
            response.text()
        );
    }

    #[test]
    fn extensions_answer_comparison_queries() {
        let relation = relation();
        let store = store();
        let extractor = Extractor::from_relation(&relation, 2)
            .with_target_synonyms("cancelled", &["cancellations"]);
        let index = ExtremumIndex::build(&relation, "cancellation probability");
        let mut session = VoiceSession::new(store, extractor, "help").with_extensions(index);
        let response =
            session.answer("make a comparison between cancellations for Delta and Alaska");
        assert!(matches!(response.answer, Answer::Extension { .. }));
        assert!(response.text().contains("times"), "{}", response.text());
    }

    #[test]
    fn without_extensions_the_apology_remains() {
        let relation = relation();
        let store = store();
        let extractor = Extractor::from_relation(&relation, 2)
            .with_target_synonyms("cancelled", &["cancellations"]);
        let mut session = VoiceSession::new(store, extractor, "help");
        let response = session.answer("which airline has the most cancellations");
        assert!(matches!(response.answer, Answer::Unsupported { .. }));
        assert!(response.text().contains("not find extremes"));
    }
}
