//! Deployment log simulation (§VIII-D, Table III and Fig. 9).
//!
//! The paper analyzes the last 50 voice requests of each of three public
//! Google-Assistant deployments. Those logs are private; this module
//! generates utterance streams with the *observed* request-type mix and
//! query-shape mix, and feeds them through the real classifier
//! ([`crate::nlq::Extractor`]). Tests assert the classifier tabulates the
//! generated logs back to the paper's counts, validating the
//! classification pipeline end to end.
//!
//! Replays against a live deployment go through the facade:
//! [`crate::service::VoiceService::replay`] tabulates a log with the
//! addressed tenant's registered extractor.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use vqs_core::prelude::EncodedRelation;

use crate::nlq::{Extractor, Request};

/// Request mix of one deployment (a Table III column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestMix {
    /// Deployment name.
    pub name: &'static str,
    /// Help requests.
    pub help: usize,
    /// Repeat requests.
    pub repeat: usize,
    /// Supported data-access queries.
    pub s_query: usize,
    /// Unsupported data-access queries.
    pub u_query: usize,
    /// Everything else.
    pub other: usize,
}

impl RequestMix {
    /// Total requests.
    pub fn total(&self) -> usize {
        self.help + self.repeat + self.s_query + self.u_query + self.other
    }
}

/// Table III's three deployments.
pub const TABLE3: [RequestMix; 3] = [
    RequestMix {
        name: "Primaries",
        help: 17,
        repeat: 3,
        s_query: 16,
        u_query: 1,
        other: 13,
    },
    RequestMix {
        name: "Flights",
        help: 9,
        repeat: 0,
        s_query: 12,
        u_query: 5,
        other: 24,
    },
    RequestMix {
        name: "Developers",
        help: 4,
        repeat: 0,
        s_query: 13,
        u_query: 16,
        other: 17,
    },
];

/// Fig. 9(a): query complexity mix over all analyzed data-access queries
/// (0, 1, 2 predicates).
pub const FIG9_COMPLEXITY: [usize; 3] = [15, 47, 1];
/// Fig. 9(b): query type mix (retrieval, comparison, extremum).
pub const FIG9_TYPES: [usize; 3] = [49, 6, 8];

const HELP_UTTERANCES: [&str; 4] = [
    "help",
    "what can you do",
    "how do i use this",
    "help me please",
];
const REPEAT_UTTERANCES: [&str; 3] = ["repeat that", "say that again", "come again please"];
// Chatter deliberately free of dimension-value words: utterances like
// "good morning" would legitimately trip the daypart dictionary of a
// flights deployment and shift the Table III counts.
const OTHER_UTTERANCES: [&str; 8] = [
    "thank you",
    "hello there",
    "play some music",
    "what's the weather like",
    "never mind",
    "stop",
    "you're funny",
    "tell me a joke",
];

/// A generated log entry with its intended category (ground truth).
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// The raw utterance.
    pub text: String,
    /// Category the generator intended (Table III label).
    pub intended: &'static str,
}

/// Generate a seeded utterance log matching `mix` for a deployment whose
/// data is described by `relation` and `target_phrase` (a spoken name of
/// the target column).
pub fn generate_log(
    relation: &EncodedRelation,
    target_phrase: &str,
    mix: &RequestMix,
    seed: u64,
) -> Vec<LogEntry> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut entries = Vec::with_capacity(mix.total());

    for i in 0..mix.help {
        entries.push(LogEntry {
            text: HELP_UTTERANCES[i % HELP_UTTERANCES.len()].to_string(),
            intended: "Help",
        });
    }
    for i in 0..mix.repeat {
        entries.push(LogEntry {
            text: REPEAT_UTTERANCES[i % REPEAT_UTTERANCES.len()].to_string(),
            intended: "Repeat",
        });
    }
    for _ in 0..mix.s_query {
        entries.push(LogEntry {
            text: supported_query_text(relation, target_phrase, &mut rng),
            intended: "S-Query",
        });
    }
    for i in 0..mix.u_query {
        entries.push(LogEntry {
            text: unsupported_query_text(relation, target_phrase, i, &mut rng),
            intended: "U-Query",
        });
    }
    for i in 0..mix.other {
        entries.push(LogEntry {
            text: OTHER_UTTERANCES[i % OTHER_UTTERANCES.len()].to_string(),
            intended: "Other",
        });
    }
    entries.shuffle(&mut rng);
    entries
}

/// A supported retrieval query with 0–2 predicates, weighted like
/// Fig. 9(a) (zero predicates ~24%, one ~74%, two ~2%).
fn supported_query_text(
    relation: &EncodedRelation,
    target_phrase: &str,
    rng: &mut StdRng,
) -> String {
    let roll: f64 = rng.gen();
    let predicates = if roll < 0.24 {
        0
    } else if roll < 0.98 {
        1
    } else {
        2
    };
    let mut text = target_phrase.to_string();
    let mut dims: Vec<usize> = (0..relation.dim_count()).collect();
    dims.shuffle(rng);
    for &d in dims.iter().take(predicates) {
        let dim = &relation.dims()[d];
        if dim.values.is_empty() {
            continue;
        }
        let value = &dim.values[rng.gen_range(0..dim.values.len())];
        text.push_str(&format!(" in {value}"));
    }
    text.push('?');
    text
}

/// An unsupported request: cycles through extremum, comparison and
/// unavailable-data shapes (the §VIII-D examples).
fn unsupported_query_text(
    relation: &EncodedRelation,
    target_phrase: &str,
    index: usize,
    rng: &mut StdRng,
) -> String {
    match index % 3 {
        0 => format!(
            "which {} has the most {target_phrase}",
            dim_name(relation, rng)
        ),
        1 => {
            let dim = &relation.dims()[rng.gen_range(0..relation.dim_count())];
            let a = &dim.values[0];
            let b = dim.values.get(1).unwrap_or(&dim.values[0]);
            format!("make a comparison between {target_phrase} for {a} and {b}")
        }
        _ => format!("{target_phrase} of flight UA one twenty three"),
    }
}

fn dim_name(relation: &EncodedRelation, rng: &mut StdRng) -> String {
    let d = rng.gen_range(0..relation.dim_count());
    relation.dims()[d].name.replace('_', " ")
}

/// Tabulate a classified log into Table III counts, in label order
/// (Help, Repeat, S-Query, U-Query, Other).
pub fn tabulate(extractor: &Extractor, log: &[LogEntry]) -> [usize; 5] {
    let mut counts = [0usize; 5];
    for entry in log {
        let idx = match extractor.classify(&entry.text) {
            Request::Help => 0,
            Request::Repeat => 1,
            Request::Query(_) => 2,
            Request::Unsupported(_) => 3,
            Request::Other => 4,
        };
        counts[idx] += 1;
    }
    counts
}

/// Count predicate complexity (0/1/2+) of the supported queries in a log,
/// as classified by the extractor (Fig. 9(a)).
pub fn complexity_histogram(extractor: &Extractor, log: &[LogEntry]) -> [usize; 3] {
    let mut counts = [0usize; 3];
    for entry in log {
        if let Request::Query(q) = extractor.classify(&entry.text) {
            counts[q.len().min(2)] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqs_core::prelude::Prior;

    fn relation() -> EncodedRelation {
        EncodedRelation::from_rows(
            &["season", "airline"],
            "cancelled",
            vec![
                (vec!["Winter", "Delta"], 20.0),
                (vec!["Summer", "United"], 10.0),
                (vec!["Fall", "Alaska"], 5.0),
                (vec!["Spring", "JetBlue"], 8.0),
            ],
            Prior::Constant(0.0),
        )
        .unwrap()
    }

    fn extractor() -> Extractor {
        Extractor::from_relation(&relation(), 2)
            .with_target_synonyms("cancelled", &["cancellations", "cancellation probability"])
            .with_unavailable_markers(&["flight"])
    }

    #[test]
    fn table3_mixes_sum_to_50() {
        for mix in TABLE3 {
            assert_eq!(mix.total(), 50, "{}", mix.name);
        }
        // Fig. 9 pies cover the 63 data-access queries.
        let data_access: usize = TABLE3.iter().map(|m| m.s_query + m.u_query).sum();
        assert_eq!(data_access, 63);
        assert_eq!(FIG9_COMPLEXITY.iter().sum::<usize>(), 63);
        assert_eq!(FIG9_TYPES.iter().sum::<usize>(), 63);
    }

    #[test]
    fn generated_log_reclassifies_to_intended_mix() {
        let relation = relation();
        let ex = extractor();
        for (i, mix) in TABLE3.iter().enumerate() {
            let log = generate_log(&relation, "cancellations", mix, 100 + i as u64);
            assert_eq!(log.len(), 50);
            let counts = tabulate(&ex, &log);
            assert_eq!(
                counts,
                [mix.help, mix.repeat, mix.s_query, mix.u_query, mix.other],
                "{}",
                mix.name
            );
        }
    }

    #[test]
    fn intended_labels_match_classifier() {
        let relation = relation();
        let ex = extractor();
        let log = generate_log(&relation, "cancellations", &TABLE3[1], 7);
        for entry in &log {
            assert_eq!(
                ex.classify(&entry.text).label(),
                entry.intended,
                "utterance: {}",
                entry.text
            );
        }
    }

    #[test]
    fn complexity_mostly_one_predicate() {
        let relation = relation();
        let ex = extractor();
        let mix = RequestMix {
            name: "synthetic",
            help: 0,
            repeat: 0,
            s_query: 200,
            u_query: 0,
            other: 0,
        };
        let log = generate_log(&relation, "cancellations", &mix, 3);
        let histogram = complexity_histogram(&ex, &log);
        assert_eq!(histogram.iter().sum::<usize>(), 200);
        // One-predicate queries dominate, as in Fig. 9(a).
        assert!(histogram[1] > histogram[0]);
        assert!(histogram[0] > histogram[2]);
    }

    #[test]
    fn logs_are_seeded() {
        let relation = relation();
        let a = generate_log(&relation, "cancellations", &TABLE3[0], 9);
        let b = generate_log(&relation, "cancellations", &TABLE3[0], 9);
        assert_eq!(a, b);
        let c = generate_log(&relation, "cancellations", &TABLE3[0], 10);
        assert_ne!(a, c);
    }
}
