//! Queries and stored speech answers.

use std::fmt;

/// A supported voice query: one target column and a conjunction of
/// equality predicates on dimension columns (§III: "queries requesting
/// information on values in a target column for a data subset, defined by
/// a conjunction of equality predicates").
///
/// Predicates are kept sorted by dimension name so structurally equal
/// queries compare and hash equal. The `Ord` impl (target, then
/// predicates) gives store snapshots a canonical order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Query {
    target: String,
    predicates: Vec<(String, String)>,
}

impl Query {
    /// Build a query; predicates are normalized (sorted by dimension).
    pub fn new(
        target: impl Into<String>,
        predicates: impl IntoIterator<Item = (String, String)>,
    ) -> Query {
        let mut predicates: Vec<(String, String)> = predicates.into_iter().collect();
        predicates.sort();
        predicates.dedup();
        Query {
            target: target.into(),
            predicates,
        }
    }

    /// Convenience builder from string slices.
    pub fn of(target: &str, predicates: &[(&str, &str)]) -> Query {
        Query::new(
            target,
            predicates
                .iter()
                .map(|&(d, v)| (d.to_string(), v.to_string())),
        )
    }

    /// The target column.
    pub fn target(&self) -> &str {
        &self.target
    }

    /// The normalized predicates.
    pub fn predicates(&self) -> &[(String, String)] {
        &self.predicates
    }

    /// Query length = number of predicates (§III).
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// True for the predicate-free query over the whole table.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// The predicate dimension names, in normalized (sorted) order.
    pub fn dimension_names(&self) -> Vec<String> {
        self.predicates.iter().map(|(d, _)| d.clone()).collect()
    }

    /// The sub-query keeping exactly the predicates whose bits are set in
    /// `mask` (bit `i` = `predicates()[i]`). The result stays normalized
    /// because a subsequence of a sorted list is sorted.
    pub fn predicate_subset(&self, mask: u64) -> Query {
        let predicates: Vec<(String, String)> = (0..self.predicates.len())
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| self.predicates[i].clone())
            .collect();
        Query {
            target: self.target.clone(),
            predicates,
        }
    }

    /// True when this query's predicates are a subset of `other`'s and the
    /// targets match — i.e. a speech stored for `self` may answer `other`
    /// via the §III generalization fallback.
    pub fn subset_of(&self, other: &Query) -> bool {
        self.target == other.target && self.predicates.iter().all(|p| other.predicates.contains(p))
    }

    /// All sub-queries whose predicate sets are subsets of this query's,
    /// ordered by decreasing predicate count (used for the §III fallback:
    /// "the speech describing the most specific data subset that contains
    /// the one referenced in the query"). Within one predicate count the
    /// order is by decreasing bitmask over the normalized predicate list;
    /// this is the tie-break rule the store and its naive reference share.
    pub fn generalizations(&self) -> Vec<Query> {
        let n = self.predicates.len();
        let mut out: Vec<Query> = (0..(1u64 << n))
            .rev()
            .map(|mask| self.predicate_subset(mask))
            .collect();
        out.sort_by_key(|q| std::cmp::Reverse(q.len()));
        out.dedup();
        out
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.target)?;
        if !self.predicates.is_empty() {
            f.write_str(" where ")?;
            for (i, (d, v)) in self.predicates.iter().enumerate() {
                if i > 0 {
                    f.write_str(" and ")?;
                }
                write!(f, "{d}={v}")?;
            }
        }
        Ok(())
    }
}

/// A fact with its scope resolved to column/value names — the stored,
/// relation-independent form of a selected fact.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedFact {
    /// `(dimension, value)` pairs of the scope (empty = overall).
    pub scope: Vec<(String, String)>,
    /// Typical (average) value.
    pub value: f64,
    /// Number of rows within scope.
    pub support: usize,
}

impl NamedFact {
    /// Human-readable scope phrase ("for season Winter and region East",
    /// or "overall").
    pub fn scope_phrase(&self) -> String {
        if self.scope.is_empty() {
            return "overall".to_string();
        }
        let parts: Vec<String> = self
            .scope
            .iter()
            .map(|(d, v)| format!("{} {}", d.replace('_', " "), v))
            .collect();
        format!("for {}", parts.join(" and "))
    }
}

/// A pre-generated speech answer.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredSpeech {
    /// The query this speech answers.
    pub query: Query,
    /// The selected facts.
    pub facts: Vec<NamedFact>,
    /// Rendered voice-output text.
    pub text: String,
    /// Utility achieved on the query's data subset.
    pub utility: f64,
    /// Base error `D(∅)` of the subset.
    pub base_error: f64,
    /// Number of rows in the subset.
    pub rows: usize,
}

impl StoredSpeech {
    /// Scaled utility in `[0, 1]`.
    pub fn scaled_utility(&self) -> f64 {
        if self.base_error == 0.0 {
            1.0
        } else {
            self.utility / self.base_error
        }
    }

    /// Approximate resident size in bytes: the struct itself plus the heap
    /// behind its query, facts, and rendered text (string/vec lengths, not
    /// capacities — a stable lower bound independent of allocator slack).
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<Self>();
        bytes += self.query.target().len();
        bytes += std::mem::size_of_val(self.query.predicates());
        for (dim, value) in self.query.predicates() {
            bytes += dim.len() + value.len();
        }
        bytes += self.facts.len() * std::mem::size_of::<NamedFact>();
        for fact in &self.facts {
            bytes += fact.scope.len() * std::mem::size_of::<(String, String)>();
            for (dim, value) in &fact.scope {
                bytes += dim.len() + value.len();
            }
        }
        bytes += self.text.len();
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_normalize() {
        let a = Query::of("delay", &[("season", "Winter"), ("region", "East")]);
        let b = Query::of("delay", &[("region", "East"), ("season", "Winter")]);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |q: &Query| {
            let mut h = DefaultHasher::new();
            q.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn duplicate_predicates_removed() {
        let q = Query::of("t", &[("a", "x"), ("a", "x")]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn generalizations_order() {
        let q = Query::of("t", &[("a", "x"), ("b", "y")]);
        let gens = q.generalizations();
        assert_eq!(gens.len(), 4);
        assert_eq!(gens[0], q);
        assert_eq!(gens[3], Query::of("t", &[]));
        // Middle two have one predicate each.
        assert_eq!(gens[1].len(), 1);
        assert_eq!(gens[2].len(), 1);
    }

    #[test]
    fn predicate_subset_and_subset_of() {
        let q = Query::of("t", &[("a", "x"), ("b", "y"), ("c", "z")]);
        let sub = q.predicate_subset(0b101);
        assert_eq!(sub, Query::of("t", &[("a", "x"), ("c", "z")]));
        assert!(sub.subset_of(&q));
        assert!(!q.subset_of(&sub));
        assert!(Query::of("t", &[]).subset_of(&q));
        // Different target: never a subset.
        assert!(!Query::of("u", &[]).subset_of(&q));
        // Same dimension, different value: not a subset.
        assert!(!Query::of("t", &[("a", "w")]).subset_of(&q));
    }

    #[test]
    fn dimension_names_sorted() {
        let q = Query::of("t", &[("b", "y"), ("a", "x")]);
        assert_eq!(q.dimension_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn query_ordering_is_canonical() {
        let mut queries = [
            Query::of("t", &[("a", "x")]),
            Query::of("s", &[("b", "y")]),
            Query::of("t", &[]),
        ];
        queries.sort();
        assert_eq!(queries[0].target(), "s");
        assert!(queries[1].is_empty());
        assert_eq!(queries[2].len(), 1);
    }

    #[test]
    fn display_readable() {
        let q = Query::of("delay", &[("season", "Winter")]);
        assert_eq!(q.to_string(), "delay where season=Winter");
        assert_eq!(Query::of("delay", &[]).to_string(), "delay");
    }

    #[test]
    fn scope_phrases() {
        let fact = NamedFact {
            scope: vec![("age_group".into(), "70-79".into())],
            value: 80.0,
            support: 10,
        };
        assert_eq!(fact.scope_phrase(), "for age group 70-79");
        let overall = NamedFact {
            scope: vec![],
            value: 35.0,
            support: 100,
        };
        assert_eq!(overall.scope_phrase(), "overall");
    }

    #[test]
    fn scaled_utility_bounds() {
        let speech = StoredSpeech {
            query: Query::of("t", &[]),
            facts: vec![],
            text: String::new(),
            utility: 30.0,
            base_error: 120.0,
            rows: 16,
        };
        assert!((speech.scaled_utility() - 0.25).abs() < 1e-12);
    }
}
