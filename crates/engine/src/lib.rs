//! # vqs-engine — the end-to-end voice query system (Fig. 2)
//!
//! The primary API is the multi-tenant [`service::VoiceService`] facade:
//! a [`ServiceBuilder`](service::ServiceBuilder) spawns one shared,
//! long-lived solver pool; each registered [`service::TenantSpec`]
//! (dataset + [`config::Configuration`]) gets its queries enumerated and
//! solved into its own sharded, lock-striped [`store::SpeechStore`]; and
//! live traffic flows through the typed pipeline
//! [`service::ServiceRequest`] → [`service::ServiceResponse`], whose
//! [`service::Answer`] enum distinguishes stored speeches, extension
//! answers, help, and apologies. Delta refreshes
//! ([`service::VoiceService::refresh_tenant`]) re-summarize only the
//! queries whose data subset changed. Production traffic enters
//! through the non-blocking [`service::frontend`]: a bounded admission
//! queue with per-tenant fairness, explicit overload shedding
//! ([`service::Answer::Overloaded`]), and an interactive priority lane
//! over background registrations/refreshes. [`logsim`] replays the
//! §VIII-D public-deployment workload.
//!
//! Answers resolve through the staged [`pipeline`] (tokenize → analyze
//! → plan → execute): a summary-store hit first, then live plan
//! execution over `vqs-relalg` for questions the store does not
//! precompute ([`service::Answer::Computed`]), then a typed apology.
//!
//! ```
//! use vqs_engine::prelude::*;
//! use vqs_data::{DimSpec, SynthSpec, TargetSpec};
//!
//! let data = SynthSpec {
//!     name: "demo".into(),
//!     dims: vec![DimSpec::named("season", &["Winter", "Summer"])],
//!     targets: vec![TargetSpec::new("delay", 15.0, 6.0, 2.0, (0.0, 60.0))],
//!     rows: 200,
//! }.generate(1, 1.0);
//!
//! let service = ServiceBuilder::new().workers(2).build();
//! let report = service
//!     .register_dataset(TenantSpec::new(
//!         "demo",
//!         data,
//!         Configuration::new("demo", &["season"], &["delay"]),
//!     ))
//!     .unwrap();
//! assert_eq!(report.speeches, 3); // overall + two seasons
//!
//! let response = service.respond(&ServiceRequest::new("demo", "delay in Winter?"));
//! match &response.answer {
//!     Answer::Speech { speech, .. } => assert!(speech.text.contains("Winter")),
//!     other => panic!("expected a stored speech, got {other:?}"),
//! }
//! ```
//!
//! The pre-facade free functions (`generator::preprocess`,
//! `generator::refresh`) and the text-only `VoiceResponse` are gone;
//! see the README migration table for the replacements.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod error;
pub mod extensions;
pub mod generator;
pub mod ingest;
pub mod logsim;
pub mod nlq;
pub mod pipeline;
pub mod problem;
pub mod service;
pub mod store;
pub mod template;
pub mod voice;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::config::{ConfigError, Configuration};
    pub use crate::error::{EngineError, Result};
    pub use crate::extensions::{ExtremumIndex, GroupAverage};
    pub use crate::generator::{
        configured_exact, configured_exact_on, enumerate_queries, solve_item, target_relation,
        PreprocessOptions, PreprocessReport, RefreshReport, WorkItem,
    };
    pub use crate::ingest::{FlushReport, IngestBuilder, IngestReport, RowDelta};
    pub use crate::logsim::{
        complexity_histogram, generate_log, tabulate, LogEntry, RequestMix, FIG9_COMPLEXITY,
        FIG9_TYPES, TABLE3,
    };
    pub use crate::nlq::{Extractor, Request, Unsupported};
    pub use crate::pipeline::{AggKind, ComputedValue, FollowOn, QueryPlan, Utterance};
    pub use crate::problem::{NamedFact, Query, StoredSpeech};
    pub use crate::service::{
        Answer, ChunkTicket, Degradation, Fault, FaultPlan, FaultSite, FrontEnd, FrontEndBuilder,
        FrontEndStats, IngestTicket, OverloadPolicy, RefreshTicket, RegisterTicket, ResponseTicket,
        ScatterPriority, ServiceBuilder, ServiceRequest, ServiceResponse, ServiceStats, SolverPool,
        TaskTicket, TenantSpec, TenantStats, Ticket, Trigger, VoiceService,
    };
    pub use crate::store::{Lookup, SpeechStore, StoreStats, DEFAULT_SHARDS};
    pub use crate::template::{format_value, speaking_time_secs, SpeechTemplate, ValueStyle};
    pub use crate::voice::VoiceSession;
}
