//! # vqs-engine — the end-to-end voice query system (Fig. 2)
//!
//! Pre-processing side: a [`config::Configuration`] describes the queries
//! to support; the [`generator`] enumerates one speech-summarization
//! problem per (target, predicate-combination) and solves them over a
//! work-stealing worker pool, filling the sharded, lock-striped
//! [`store::SpeechStore`]; [`generator::refresh`] re-summarizes only the
//! queries whose data subset changed. Run-time side: the
//! [`nlq::Extractor`] maps request text to queries, the store serves the
//! most specific pre-generated speech, and [`voice::VoiceSession`] wraps
//! the loop with help/repeat handling and latency accounting.
//! [`logsim`] replays the §VIII-D public-deployment workload.
//!
//! ```
//! use vqs_engine::prelude::*;
//! use vqs_core::prelude::GreedySummarizer;
//! use vqs_data::{DimSpec, SynthSpec, TargetSpec};
//!
//! let data = SynthSpec {
//!     name: "demo".into(),
//!     dims: vec![DimSpec::named("season", &["Winter", "Summer"])],
//!     targets: vec![TargetSpec::new("delay", 15.0, 6.0, 2.0, (0.0, 60.0))],
//!     rows: 200,
//! }.generate(1, 1.0);
//!
//! let config = Configuration::new("demo", &["season"], &["delay"]);
//! let (store, report) = preprocess(
//!     &data, &config, &GreedySummarizer::with_optimized_pruning(),
//!     &PreprocessOptions::default(),
//! ).unwrap();
//! assert_eq!(report.speeches, 3); // overall + two seasons
//! let answer = store.lookup(&Query::of("delay", &[("season", "Winter")]));
//! assert!(answer.speech().is_some());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod error;
pub mod extensions;
pub mod generator;
pub mod logsim;
pub mod nlq;
pub mod problem;
pub mod store;
pub mod template;
pub mod voice;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::config::{ConfigError, Configuration};
    pub use crate::error::{EngineError, Result};
    pub use crate::extensions::{ExtremumIndex, GroupAverage};
    pub use crate::generator::{
        configured_exact, enumerate_queries, preprocess, refresh, solve_item, target_relation,
        PreprocessOptions, PreprocessReport, RefreshReport, WorkItem,
    };
    pub use crate::logsim::{
        complexity_histogram, generate_log, tabulate, LogEntry, RequestMix, FIG9_COMPLEXITY,
        FIG9_TYPES, TABLE3,
    };
    pub use crate::nlq::{Extractor, Request, Unsupported};
    pub use crate::problem::{NamedFact, Query, StoredSpeech};
    pub use crate::store::{Lookup, SpeechStore, StoreStats, DEFAULT_SHARDS};
    pub use crate::template::{format_value, speaking_time_secs, SpeechTemplate, ValueStyle};
    pub use crate::voice::{VoiceResponse, VoiceSession};
}
