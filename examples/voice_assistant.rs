//! A scripted voice-assistant session over the flights deployment,
//! mirroring the paper's public Google-Assistant deployment (§VIII-D):
//! tenant registration, live traffic, and a classified request log —
//! all through the [`vqs_engine::service::VoiceService`] facade.
//!
//! ```text
//! cargo run --release --example voice_assistant
//! ```

use vqs_engine::prelude::*;

fn main() -> Result<()> {
    let dataset = vqs_data::flights_spec().generate(vqs_data::DEFAULT_SEED, 0.05);
    let dims: Vec<&str> = dataset.dims.iter().map(String::as_str).collect();
    let config = Configuration::new("flights", &dims, &["cancelled"]);
    // The relation is only needed locally to generate the synthetic
    // deployment log; the service builds its own from the registration.
    let relation = target_relation(&dataset, &config, "cancelled")?;

    // Register the deployment: speech template, target phrasings, the
    // markers for unavailable data, and the extremum/comparison index
    // that answers the §VIII-D "U-Query" shapes.
    let service = ServiceBuilder::new().build();
    let report = service.register_dataset(
        TenantSpec::new("flights", dataset, config)
            .template(
                "cancelled",
                SpeechTemplate::per_mille("cancellation probability", "flights"),
            )
            .target_synonyms("cancelled", &["cancellations", "cancellation probability"])
            .unavailable_markers(&["flight"])
            .extremum_index("cancelled", "cancellation probability")
            .help_text("Ask about flight cancellations, e.g. 'cancellations in Winter'."),
    )?;
    println!(
        "deployment ready: {} speeches pre-generated in {:?}\n",
        report.speeches, report.elapsed
    );

    // Stateless traffic through the typed pipeline, including the
    // Example 5 query.
    for utterance in [
        "help",
        "cancellations in Winter?",
        "cancellations in Winter on Mon in the evening",
        "which airline has the most cancellations",
        "cancellations of flight UA one twenty three",
        "thanks!",
    ] {
        let response = service.respond(&ServiceRequest::new("flights", utterance));
        println!("You:    {utterance}");
        println!("System: {} [{}]\n", response.text(), response.label());
    }

    // Conversation state (repeat handling) lives in per-user sessions.
    let mut session = service.session("flights").expect("tenant registered");
    let first = session.answer("cancellations in Winter?");
    let repeated = session.answer("repeat that");
    assert_eq!(first.text(), repeated.text());
    println!(
        "You:    repeat that\nSystem: {} [repeat]\n",
        repeated.text()
    );

    // Replay the §VIII-D deployment log through the tenant's classifier
    // and tabulate it (Table III).
    let mix = TABLE3[1]; // the flights column
    let log = generate_log(&relation, "cancellations", &mix, 7);
    let counts = service.replay("flights", &log).expect("tenant registered");
    println!("last {} requests classified:", log.len());
    for (label, count) in ["Help", "Repeat", "S-Query", "U-Query", "Other"]
        .iter()
        .zip(counts)
    {
        println!("  {label:8} {count}");
    }

    // Per-tenant roll-up of everything the service just did.
    let stats = service.stats();
    let tenant = &stats.tenants[0];
    println!(
        "\ntenant '{}': {} requests ({} speech, {} extension, {} help, {} apologies), \
         {} store lookups",
        tenant.tenant,
        tenant.requests,
        tenant.speech_answers,
        tenant.extension_answers,
        tenant.help_answers,
        tenant.unsupported_answers,
        tenant.store.lookups,
    );
    Ok(())
}
