//! A scripted voice-assistant session over the flights deployment,
//! mirroring the paper's public Google-Assistant deployment (§VIII-D):
//! pre-processing, a conversation, and a classified request log.
//!
//! ```text
//! cargo run --release --example voice_assistant
//! ```

use vqs_core::prelude::GreedySummarizer;
use vqs_engine::prelude::*;

fn main() -> Result<()> {
    let dataset = vqs_data::flights_spec().generate(vqs_data::DEFAULT_SEED, 0.05);
    let dims: Vec<&str> = dataset.dims.iter().map(String::as_str).collect();
    let config = Configuration::new("flights", &dims, &["cancelled"]);

    let mut options = PreprocessOptions::default();
    options.templates.insert(
        "cancelled".to_string(),
        SpeechTemplate::per_mille("cancellation probability", "flights"),
    );
    let (store, report) = preprocess(
        &dataset,
        &config,
        &GreedySummarizer::with_optimized_pruning(),
        &options,
    )?;
    println!(
        "deployment ready: {} speeches pre-generated in {:?}\n",
        report.speeches, report.elapsed
    );

    let relation = target_relation(&dataset, &config, "cancelled")?;
    let extractor = Extractor::from_relation(&relation, config.max_query_length)
        .with_target_synonyms("cancelled", &["cancellations", "cancellation probability"])
        .with_unavailable_markers(&["flight"]);
    // The extremum/comparison extension answers the §VIII-D "U-Query"
    // shapes from a pre-computed index.
    let index = ExtremumIndex::build(&relation, "cancellation probability");
    let mut session = VoiceSession::new(
        &store,
        extractor.clone(),
        "Ask about flight cancellations, e.g. 'cancellations in Winter'.",
    )
    .with_extensions(index);

    // A short conversation, including the Example 5 query.
    for utterance in [
        "help",
        "cancellations in Winter?",
        "repeat that",
        "cancellations in Winter on Mon in the evening",
        "which airline has the most cancellations",
        "cancellations of flight UA one twenty three",
        "thanks!",
    ] {
        let response = session.respond(utterance);
        println!("You:    {utterance}");
        println!("System: {} [{}]\n", response.text, response.request.label());
    }

    // Replay the §VIII-D deployment log and tabulate it (Table III).
    let mix = TABLE3[1]; // the flights column
    let log = generate_log(&relation, "cancellations", &mix, 7);
    let counts = tabulate(&extractor, &log);
    println!("last {} requests classified:", log.len());
    for (label, count) in ["Help", "Repeat", "S-Query", "U-Query", "Other"]
        .iter()
        .zip(counts)
    {
        println!("  {label:8} {count}");
    }
    Ok(())
}
