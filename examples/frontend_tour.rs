//! Serving front-end tour: a [`vqs_engine::service::FrontEnd`]
//! multiplexing concurrent clients over a [`VoiceService`] through a
//! bounded admission queue — ticketed responses, a background
//! registration on the control lane, a deliberate overload burst with
//! explicit shedding, per-tenant fairness accounting, and a graceful
//! draining shutdown.
//!
//! ```text
//! cargo run --release --example frontend_tour
//! ```

use std::sync::Arc;

use vqs_engine::prelude::*;

fn main() -> Result<()> {
    // A service with one tenant registered up front...
    let service = Arc::new(ServiceBuilder::new().build());
    let flights = vqs_data::flights_spec().generate(vqs_data::DEFAULT_SEED, 0.05);
    let dims: Vec<String> = flights.dims.clone();
    let dims: Vec<&str> = dims.iter().map(String::as_str).collect();
    let report = service.register_dataset(
        TenantSpec::new(
            "flights",
            flights,
            Configuration::new("flights", &dims, &["cancelled"]),
        )
        .target_synonyms("cancelled", &["cancellations"]),
    )?;
    println!("registered 'flights': {} speeches", report.speeches);

    // ...behind a small, bounded serving front-end.
    let frontend = FrontEnd::builder(Arc::clone(&service))
        .workers(2)
        .queue_capacity(64)
        .tenant_share(48)
        .build();
    println!(
        "front-end up: {} serving workers over a 64-deep admission queue\n",
        frontend.workers()
    );

    // A second tenant registers in the BACKGROUND: the control lane
    // only runs when no interactive request is queued, and its solver
    // batches take the pool's bulk lane.
    let acs = vqs_data::acs_spec().generate(vqs_data::DEFAULT_SEED, 0.05);
    let dims: Vec<String> = acs.dims.clone();
    let dims: Vec<&str> = dims.iter().map(String::as_str).collect();
    let registration = frontend.submit_register(TenantSpec::new(
        "acs",
        acs,
        Configuration::new("acs", &dims, &["hearing"]),
    ));

    // Interactive traffic flows immediately, ticket by ticket...
    for text in [
        "cancellations in winter",
        "cancellations in December",
        "help",
    ] {
        let ticket = frontend.submit(ServiceRequest::new("flights", text));
        let response = ticket.wait();
        println!("  '{text}' -> {}", response.text());
    }
    // ...or as a pipelined chunk (one queue handoff, one ticket).
    let chunk: Vec<ServiceRequest> = (1..=4)
        .map(|month| ServiceRequest::new("flights", format!("cancellations in month {month}")))
        .collect();
    let responses = frontend.submit_chunk(chunk).wait();
    println!("  chunk of {} answered in one ticket\n", responses.len());

    // The background registration resolves on its own ticket.
    let report = registration.wait()?;
    println!(
        "'acs' registered behind live traffic: {} speeches",
        report.speeches
    );
    let response = frontend
        .submit(ServiceRequest::new("acs", "hearing impairment in Alaska"))
        .wait();
    println!("  acs answer: {}\n", response.text());

    // Overload: a burst far past the queue bound is shed explicitly —
    // typed `Answer::Overloaded`, never an unbounded queue.
    let burst: Vec<ResponseTicket> = (0..512)
        .map(|_| frontend.submit(ServiceRequest::new("flights", "cancellations in December")))
        .collect();
    let shed = burst
        .into_iter()
        .filter(|t| matches!(t.wait().answer, Answer::Overloaded { .. }))
        .count();
    let stats = frontend.stats();
    println!(
        "burst of 512: {} served, {} shed (peak queue depth {})",
        stats.completed - 8,
        shed,
        stats.peak_queued
    );
    for (tenant, count) in &stats.shed_by_tenant {
        println!("  shed by tenant: {tenant} = {count}");
    }

    // Shutdown drains everything already admitted, then joins.
    frontend.shutdown();
    println!("\nfront-end drained and shut down; the service lives on:");
    let direct = service.respond(&ServiceRequest::new("flights", "cancellations in December"));
    println!("  direct respond still works: {}", direct.text());
    Ok(())
}
