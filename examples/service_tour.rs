//! Multi-tenant tour: one [`vqs_engine::service::VoiceService`] hosting
//! two datasets behind a single shared solver pool — registration, live
//! queries per tenant, a streaming-style delta refresh, per-tenant
//! statistics, and eviction.
//!
//! ```text
//! cargo run --release --example service_tour
//! ```

use vqs_engine::prelude::*;
use vqs_relalg::prelude::{Table, Value};

fn main() -> Result<()> {
    // One service, one solver pool, many tenants.
    let service = ServiceBuilder::new().build();
    println!(
        "service up with {} shared solver workers\n",
        service.pool_workers()
    );

    // Tenant 1: the flights deployment.
    let flights = vqs_data::flights_spec().generate(vqs_data::DEFAULT_SEED, 0.05);
    let dims: Vec<&str> = flights.dims.iter().map(String::as_str).collect();
    let report = service.register_dataset(
        TenantSpec::new(
            "flights",
            flights.clone(),
            Configuration::new("flights", &dims, &["cancelled"]),
        )
        .template(
            "cancelled",
            SpeechTemplate::per_mille("cancellation probability", "flights"),
        )
        .target_synonyms("cancelled", &["cancellations"]),
    )?;
    println!(
        "registered 'flights': {} speeches in {:?}",
        report.speeches, report.elapsed
    );

    // Tenant 2: the ACS disability deployment.
    let acs = vqs_data::acs_spec().generate(vqs_data::DEFAULT_SEED, 0.05);
    let dims: Vec<String> = acs.dims.clone();
    let dims: Vec<&str> = dims.iter().map(String::as_str).collect();
    let report = service.register_dataset(
        TenantSpec::new(
            "acs",
            acs,
            Configuration::new("acs", &dims, &["visual", "hearing"]),
        )
        .template(
            "visual",
            SpeechTemplate::per_mille("visual impairment rate", "persons"),
        )
        .target_synonyms("visual", &["visual impairment", "visual impairments"])
        .target_synonyms("hearing", &["hearing impairment", "hearing impairments"]),
    )?;
    println!(
        "registered 'acs':     {} speeches in {:?}\n",
        report.speeches, report.elapsed
    );
    println!("tenants: {:?}\n", service.tenants());

    // The same facade answers per tenant, with isolated stores.
    for (tenant, utterance) in [
        ("flights", "cancellations in Winter?"),
        ("acs", "visual impairments in Brooklyn"),
        ("acs", "hearing impairments for age 70-79"),
        ("primaries", "support for candidate X"), // never registered
    ] {
        let response = service.respond(&ServiceRequest::new(tenant, utterance));
        println!("[{tenant}] You:    {utterance}");
        println!(
            "[{tenant}] System: {} [{}]\n",
            response.text(),
            response.label()
        );
    }

    // Streaming-style update: the first 50 flights get re-booked onto
    // Winter (a dimension change keeps the global prior intact, so only
    // the subsets containing those rows are re-summarized).
    let changed_rows: Vec<usize> = (0..50).collect();
    let schema = flights.table.schema().clone();
    let season_col = schema.index_of("season").expect("column exists");
    let rows: Vec<Vec<Value>> = flights
        .table
        .iter_rows()
        .enumerate()
        .map(|(row_index, mut row)| {
            if row_index < 50 {
                row[season_col] = Value::Str("Winter".into());
            }
            row
        })
        .collect();
    let mutated = vqs_data::GeneratedDataset {
        name: flights.name.clone(),
        table: Table::from_rows(schema, rows).expect("schema unchanged"),
        dims: flights.dims.clone(),
        targets: flights.targets.clone(),
    };
    let refresh = service.refresh_tenant("flights", &mutated, &changed_rows)?;
    println!(
        "refreshed 'flights': {} recomputed, {} kept, {} removed in {:?}\n",
        refresh.recomputed, refresh.kept, refresh.removed, refresh.elapsed
    );

    // Per-tenant instrumentation roll-ups.
    let stats = service.stats();
    println!(
        "{:<10} {:>8} {:>9} {:>9} {:>11} {:>13}",
        "tenant", "speeches", "requests", "lookups", "refreshes", "solver time"
    );
    for tenant in &stats.tenants {
        println!(
            "{:<10} {:>8} {:>9} {:>9} {:>11} {:>12.1?}",
            tenant.tenant,
            tenant.speeches,
            tenant.requests,
            tenant.store.lookups,
            tenant.refreshes,
            tenant.solver_time,
        );
    }
    println!(
        "totals: {} speeches, {} requests",
        stats.total_speeches(),
        stats.total_requests()
    );

    // Tenants come and go without touching each other.
    assert!(service.evict_tenant("acs"));
    println!("\nevicted 'acs'; tenants now: {:?}", service.tenants());
    Ok(())
}
