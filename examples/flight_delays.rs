//! The paper's running example (Fig. 1), end to end: the delay grid, the
//! two competing speeches, greedy vs exact selection, and the Example 8
//! pruning bounds.
//!
//! ```text
//! cargo run --example flight_delays
//! ```

use vqs_core::algorithms::pruning::{plan_for, select_best_fact_with_plan};
use vqs_core::prelude::*;
use vqs_data::running_example;

fn main() {
    let relation = running_example::relation();
    println!("Fig. 1 data — average delay by season and region:");
    print!("          ");
    for region in running_example::REGIONS {
        print!("{region:>8}");
    }
    println!();
    for (s, season) in running_example::SEASONS.iter().enumerate() {
        print!("{season:>10}");
        for r in 0..4 {
            print!("{:>8.0}", running_example::GRID[s][r]);
        }
        println!();
    }

    // Example 4: the two speeches of Fig. 1.
    let speech1 = running_example::speech1(&relation);
    let speech2 = running_example::speech2(&relation);
    println!("\nD(∅) = {}", base_error(&relation));
    println!(
        "Speech 1 ({}):\n  error {} → utility {}",
        speech1.describe(&relation),
        speech1.error(&relation),
        speech1.utility(&relation)
    );
    println!(
        "Speech 2 ({}):\n  error {} → utility {}",
        speech2.describe(&relation),
        speech2.error(&relation),
        speech2.utility(&relation)
    );

    // Example 7: greedy selection over the region/season fact pool.
    let catalog = running_example::example7_catalog(&relation);
    let problem = Problem::new(&relation, &catalog, 2).expect("valid problem");
    let greedy = GreedySummarizer::base()
        .summarize(&problem)
        .expect("greedy runs");
    println!(
        "\nGreedy (m=2) picks: {}\n  utility {}",
        greedy.speech.describe(&relation),
        greedy.utility
    );

    // Exact search agrees here (and is guaranteed optimal).
    let exact = ExactSummarizer::paper()
        .summarize(&problem)
        .expect("exact runs");
    println!(
        "Exact (m=2) utility {} after expanding {} nodes ({} pruned)",
        exact.utility, exact.instrumentation.nodes_expanded, exact.instrumentation.nodes_pruned
    );

    // Example 8: after the Winter fact, group bounds prune the search for
    // the second fact.
    let winter = Fact::for_scope(
        &relation,
        running_example::scope(&relation, &[("season", "Winter")]),
    )
    .expect("winter fact");
    let mut residual = ResidualState::new(&relation);
    residual.apply_fact(&relation, &winter);
    let mut counters = Instrumentation::default();
    println!("\nExample 8 — per-fact deviation bounds after the Winter fact:");
    for (g, group) in catalog.groups().iter().enumerate() {
        if group.cols.len() != 1 {
            continue;
        }
        let bounds = catalog.group_fact_bounds(&residual, g, &mut counters);
        for (offset, bound) in bounds.iter().enumerate() {
            let fact = catalog.fact(group.fact_start + offset);
            println!(
                "  facts referencing {}: ≤ {bound}",
                fact.scope.describe(&relation)
            );
        }
    }
    let plan = plan_for(&problem, &FactPruning::optimized());
    let (best, gain) =
        select_best_fact_with_plan(&problem, &residual, plan.as_ref(), &mut counters)
            .expect("a fact helps");
    println!(
        "second greedy pick: {} (gain {gain}, {} groups pruned)",
        catalog.fact(best).describe(&relation),
        counters.groups_pruned
    );
}
