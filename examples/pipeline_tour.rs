//! Staged pipeline tour: one utterance at a time through the
//! tokenize → analyze → plan → execute chain, showing all three answer
//! tiers — summary-store hits (with follow-on hints), live plans over
//! the tenant's relational data, and the typed apology when neither
//! tier can help.
//!
//! ```text
//! cargo run --release --example pipeline_tour
//! ```

use vqs_data::{DimSpec, SynthSpec, TargetSpec};
use vqs_engine::prelude::*;

fn main() -> Result<()> {
    // A small air-traffic deployment: two dimensions, two targets.
    let data = SynthSpec {
        name: "air".to_string(),
        dims: vec![
            DimSpec::named("season", &["Winter", "Spring", "Summer", "Fall"]),
            DimSpec::named("region", &["East", "West", "North"]),
        ],
        targets: vec![
            TargetSpec::new("delay", 15.0, 8.0, 2.0, (0.0, 60.0)),
            TargetSpec::new("cancelled", 30.0, 10.0, 4.0, (0.0, 1000.0)),
        ],
        rows: 240,
    }
    .generate(0xA1, 1.0);

    let service = ServiceBuilder::new().workers(2).build();
    let report = service.register_dataset(
        TenantSpec::new(
            "air",
            data,
            Configuration::new("air", &["season", "region"], &["delay", "cancelled"]),
        )
        .target_synonyms("delay", &["delays"])
        .unavailable_markers(&["flight"]),
    )?;
    println!(
        "registered 'air': {} speeches in {:?}\n",
        report.speeches, report.elapsed
    );

    // Tier 1: a single-predicate question hits the summary store and
    // comes back with a follow-on hint pointing at an adjacent summary.
    // Tier 2: compound, comparative, extremum, and counting questions
    // miss the store but compile to a relational plan and execute live.
    // Tier 3: questions about data the tenant never ingested get a
    // typed apology instead of a wrong answer.
    for utterance in [
        "delay in Winter?",                       // store hit
        "which season has the most delay",        // live extremum
        "compare delay for Winter versus Summer", // live comparison
        "how many delays in Winter",              // live count
        "delay of flight UA one twenty three",    // apology
        "help",                                   // chatter
    ] {
        let response = service.respond(&ServiceRequest::new("air", utterance));
        println!("You:    {utterance}");
        println!("System: {} [{}]", response.text(), response.label());
        if let Answer::Computed { plan, value, .. } = &response.answer {
            println!("        plan:  {plan:?}");
            println!("        value: {value:?}");
        }
        if let Some(hint) = &response.follow_on {
            println!("        follow-on: \"{}\"", hint.utterance);
        }
        println!();
    }

    // The counters distinguish store hits from live computed answers.
    let stats = service.stats();
    for tenant in &stats.tenants {
        println!(
            "tenant '{}': {} requests = {} speeches + {} computed + {} apologies + {} help/chatter",
            tenant.tenant,
            tenant.requests,
            tenant.speech_answers,
            tenant.computed_answers,
            tenant.unsupported_answers,
            tenant.help_answers,
        );
    }
    Ok(())
}
