//! Quickstart: summarize a small data set and answer a voice query.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use vqs_core::prelude::GreedySummarizer;
use vqs_data::{DimSpec, SynthSpec, TargetSpec};
use vqs_engine::prelude::*;

fn main() -> Result<()> {
    // 1. Some data: flight delays by season and region.
    let data = SynthSpec {
        name: "demo-flights".to_string(),
        dims: vec![
            DimSpec::named("season", &["Spring", "Summer", "Fall", "Winter"]),
            DimSpec::named("region", &["East", "South", "West", "North"]),
        ],
        targets: vec![TargetSpec::new("delay", 12.0, 8.0, 3.0, (0.0, 120.0))],
        rows: 2_000,
    }
    .generate(42, 1.0);

    // 2. A configuration: which columns may appear in queries, and which
    //    column the speeches describe.
    let config = Configuration::new("demo-flights", &["season", "region"], &["delay"]);

    // 3. Pre-processing: one optimized speech per supported query.
    let (store, report) = preprocess(
        &data,
        &config,
        &GreedySummarizer::with_optimized_pruning(),
        &PreprocessOptions::default(),
    )?;
    println!(
        "pre-generated {} speeches for {} queries in {:?} ({:?} per query)",
        report.speeches,
        report.queries,
        report.elapsed,
        report.per_query()
    );

    // 4. Run time: voice queries resolve to pre-generated speeches.
    let relation = target_relation(&data, &config, "delay")?;
    let extractor = Extractor::from_relation(&relation, config.max_query_length)
        .with_target_synonyms("delay", &["delays", "how late"]);
    let mut session = VoiceSession::new(
        &store,
        extractor,
        "Ask about delays by season or region, e.g. 'delays in Winter'.",
    );
    for utterance in [
        "help",
        "delays in Winter?",
        "how late are flights in the North",
    ] {
        let response = session.respond(utterance);
        println!("\nYou:    {utterance}");
        println!("System: {}", response.text);
        println!(
            "        ({}; answered in {}us)",
            response.request.label(),
            response.latency_micros
        );
    }
    Ok(())
}
