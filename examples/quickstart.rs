//! Quickstart: stand up a voice-query service, summarize a small data
//! set, and answer a voice query.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use vqs_data::{DimSpec, SynthSpec, TargetSpec};
use vqs_engine::prelude::*;

fn main() -> Result<()> {
    // 1. Some data: flight delays by season and region.
    let data = SynthSpec {
        name: "demo-flights".to_string(),
        dims: vec![
            DimSpec::named("season", &["Spring", "Summer", "Fall", "Winter"]),
            DimSpec::named("region", &["East", "South", "West", "North"]),
        ],
        targets: vec![TargetSpec::new("delay", 12.0, 8.0, 3.0, (0.0, 120.0))],
        rows: 2_000,
    }
    .generate(42, 1.0);

    // 2. A configuration: which columns may appear in queries, and which
    //    column the speeches describe.
    let config = Configuration::new("demo-flights", &["season", "region"], &["delay"]);

    // 3. The service facade: one shared solver pool; registering the
    //    dataset pre-generates one optimized speech per supported query.
    let service = ServiceBuilder::new().build();
    let report = service.register_dataset(
        TenantSpec::new("demo-flights", data, config)
            .target_synonyms("delay", &["delays", "how late"])
            .help_text("Ask about delays by season or region, e.g. 'delays in Winter'."),
    )?;
    println!(
        "pre-generated {} speeches for {} queries in {:?} ({:?} per query, {:?} in the solver)",
        report.speeches,
        report.queries,
        report.elapsed,
        report.per_query(),
        report.total_solver_time(),
    );

    // 4. Run time: voice requests resolve to pre-generated speeches
    //    through the typed answer pipeline.
    for utterance in [
        "help",
        "delays in Winter?",
        "how late are flights in the North",
    ] {
        let response = service.respond(&ServiceRequest::new("demo-flights", utterance));
        println!("\nYou:    {utterance}");
        println!("System: {}", response.text());
        println!(
            "        ({}; answered in {}us)",
            response.label(),
            response.latency_micros
        );
    }

    // 5. Conversations with repeat handling are per-user sessions.
    let mut session = service.session("demo-flights").expect("tenant registered");
    let first = session.answer("delays in Winter?").text().to_string();
    let again = session.answer("say that again");
    assert_eq!(first, again.text());
    println!("\n(repeat works: {})", again.text());
    Ok(())
}
