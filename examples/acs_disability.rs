//! The ACS disability scenario behind Table II and Fig. 6: summarize
//! visual-impairment prevalence per New York borough and age group, and
//! contrast a poorly chosen speech with the optimized one.
//!
//! ```text
//! cargo run --example acs_disability
//! ```

use vqs_core::prelude::*;
use vqs_engine::prelude::*;

/// Aggregate the ACS rows to 15 (borough, age group) data points.
fn borough_age_relation() -> EncodedRelation {
    let dataset = vqs_data::acs_spec().generate(vqs_data::DEFAULT_SEED, 0.1);
    let schema = dataset.table.schema();
    let borough = schema.index_of("borough").unwrap();
    let age = schema.index_of("age_group").unwrap();
    let visual = schema.index_of("visual").unwrap();
    let coarse = |fine: &str| match fine {
        "0-9" | "10-19" => "Teenagers",
        "70-79" | "80+" => "Elders",
        _ => "Adults",
    };
    let mut sums: std::collections::BTreeMap<(String, &str), (f64, usize)> = Default::default();
    for row in 0..dataset.table.len() {
        let key = (
            dataset.table.value(row, borough).to_string(),
            coarse(&dataset.table.value(row, age).to_string()),
        );
        let entry = sums.entry(key).or_insert((0.0, 0));
        entry.0 += dataset.table.value(row, visual).as_f64().unwrap();
        entry.1 += 1;
    }
    let rows: Vec<(Vec<&str>, f64)> = sums
        .iter()
        .map(|((b, a), (sum, n))| (vec![b.as_str(), *a], sum / *n as f64))
        .collect();
    let relation = EncodedRelation::from_rows(
        &["borough", "age_group"],
        "visual",
        rows,
        Prior::Constant(0.0),
    )
    .unwrap();
    let mean = relation.target_mean();
    relation.with_prior(Prior::Constant(mean)).unwrap()
}

fn main() {
    let relation = borough_age_relation();
    println!("visual impairment prevalence (per 1000) across 15 data points\n");

    let catalog = FactCatalog::build(&relation, &[0, 1], 2).expect("catalog");
    let problem = Problem::new(&relation, &catalog, 3).expect("problem");
    let template = SpeechTemplate::per_mille("visual impairment rate", "persons");
    let query = Query::of("visual", &[]);

    let render = |facts: &[Fact]| {
        let named: Vec<NamedFact> = facts
            .iter()
            .map(|f| NamedFact {
                scope: f
                    .scope
                    .pairs()
                    .into_iter()
                    .map(|(d, code)| {
                        let dim = &relation.dims()[d];
                        (dim.name.clone(), dim.values[code as usize].to_string())
                    })
                    .collect(),
                value: f.value,
                support: f.support,
            })
            .collect();
        template.render(&query, &named)
    };

    // The optimized speech (our approach).
    let best = GreedySummarizer::with_optimized_pruning()
        .summarize(&problem)
        .expect("greedy");
    println!(
        "optimized speech (utility {:.1} of {:.1} base error):",
        best.utility, best.base_error
    );
    println!("  {}\n", render(best.speech.facts()));

    // A deliberately bad speech: three facts about the same narrow region
    // (the failure mode Table II's worst speech exhibits).
    let worst: Vec<Fact> = catalog
        .facts()
        .iter()
        .filter(|f| f.scope.len() == 2)
        .take(3)
        .cloned()
        .collect();
    let worst_utility = utility(&relation, &worst);
    println!("a poorly chosen speech (utility {worst_utility:.1}):");
    println!("  {}\n", render(&worst));

    // Per-point residual deviation under each speech (what Fig. 6's
    // workers would estimate from).
    println!(
        "{:<12} {:<10} {:>8} {:>10} {:>10}",
        "borough", "age", "actual", "best dev", "worst dev"
    );
    let priors = relation.prior_values();
    for (row, &prior) in priors.iter().enumerate() {
        let actual = relation.target(row);
        let dev = |facts: &[Fact]| {
            let mut d = (prior - actual).abs();
            for fact in facts {
                if fact.scope.matches_row(&relation, row) {
                    d = d.min((fact.value - actual).abs());
                }
            }
            d
        };
        println!(
            "{:<12} {:<10} {:>8.1} {:>10.1} {:>10.1}",
            relation.value_str(0, row),
            relation.value_str(1, row),
            actual,
            dev(best.speech.facts()),
            dev(&worst)
        );
    }
}
